//! The process-global injection switch.
//!
//! Mirrors the tracing switch in `egd-obs`: disabled is the default and costs
//! the transport exactly one relaxed atomic load per delivery
//! ([`injection_armed`]); everything else — channel ordinal counting, event
//! matching, the fired-event log — lives behind that branch and is only paid
//! while a chaos test holds an [`InjectionSession`].

use crate::plan::{FaultEvent, FaultPlan};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Bit 0: a plan is armed. One word so the transport's fast path is a single
/// relaxed load.
static ARMED: AtomicU64 = AtomicU64::new(0);
/// The armed plan and its mutable firing state. Only touched behind
/// [`injection_armed`], so the lock is never contended in production runs.
static ACTIVE: Mutex<Option<ActiveState>> = Mutex::new(None);
/// Serialises injection sessions: arming is process-global, so concurrent
/// chaos tests must take turns (the same discipline as
/// `egd_obs::session_guard`).
static SESSION: Mutex<()> = Mutex::new(());

/// What the armed plan decided about one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageFate {
    /// Deliver normally.
    Deliver,
    /// Silently drop; the payload names the fault-plan event id.
    Drop {
        /// Id (plan index) of the event that fired.
        event: usize,
    },
    /// Hold the message across `held_for` subsequent deliveries.
    Delay {
        /// Id (plan index) of the event that fired.
        event: usize,
        /// Deliveries to hold the message across.
        held_for: u64,
    },
}

/// One fault that actually fired, in firing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiredFault {
    /// Id (plan index) of the event.
    pub event: usize,
    /// The event itself.
    pub fault: FaultEvent,
}

/// Aggregate counters of an injection session so far.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InjectionReport {
    /// Every fault that fired, in firing order.
    pub fired: Vec<FiredFault>,
    /// Crash events fired.
    pub crashes: u64,
    /// Drop events fired.
    pub drops: u64,
    /// Delay events fired.
    pub delays: u64,
    /// Slow-rank events fired.
    pub stalls: u64,
    /// Stale (pre-recovery epoch) packets the transport rejected.
    pub stale_rejected: u64,
}

struct ActiveState {
    plan: FaultPlan,
    fired: Vec<bool>,
    /// Messages observed per `(from, to)` channel — the deterministic
    /// ordinal base for drop/delay matching.
    sent: HashMap<(usize, usize), u64>,
    report: InjectionReport,
}

/// An armed injection session. Dropping it disarms the switch and clears the
/// plan state; holding it serialises sessions process-wide.
#[must_use = "the plan is disarmed when the session drops"]
pub struct InjectionSession {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for InjectionSession {
    fn drop(&mut self) {
        ARMED.store(0, Ordering::Relaxed);
        *lock_active() = None;
    }
}

fn lock_active() -> MutexGuard<'static, Option<ActiveState>> {
    // A chaos test that panicked mid-session must not wedge every later one.
    ACTIVE.lock().unwrap_or_else(|p| p.into_inner())
}

/// Arms `plan` for the lifetime of the returned session. Blocks until any
/// other session has ended (arming is process-global).
pub fn arm(plan: FaultPlan) -> InjectionSession {
    let lock = SESSION.lock().unwrap_or_else(|p| p.into_inner());
    let fired = vec![false; plan.events.len()];
    *lock_active() = Some(ActiveState {
        plan,
        fired,
        sent: HashMap::new(),
        report: InjectionReport::default(),
    });
    ARMED.store(1, Ordering::Relaxed);
    InjectionSession { _lock: lock }
}

/// Whether a fault plan is armed. One relaxed load — the transport's entire
/// disabled-path cost.
#[inline(always)]
pub fn injection_armed() -> bool {
    ARMED.load(Ordering::Relaxed) & 1 == 1
}

/// Reports one message on the `(from, to)` channel and returns its fate.
/// Ordinals count in the sender's program order, so the decision is
/// deterministic regardless of scheduling. Every matching event fires once.
///
/// `domain` scopes the plan to the world under test: only calls whose domain
/// equals the armed plan's seed are counted or matched, so unrelated worlds
/// running concurrently in the same process (other tests, other executors)
/// neither consume channel ordinals nor absorb the faults.
pub fn message_fate(domain: u64, from: usize, to: usize) -> MessageFate {
    let mut guard = lock_active();
    let Some(state) = guard.as_mut() else {
        return MessageFate::Deliver;
    };
    if state.plan.seed != domain {
        return MessageFate::Deliver;
    }
    let ordinal = {
        let slot = state.sent.entry((from, to)).or_insert(0);
        let n = *slot;
        *slot += 1;
        n
    };
    for (id, event) in state.plan.events.iter().enumerate() {
        if state.fired[id] {
            continue;
        }
        match *event {
            FaultEvent::DropMessage {
                from: f,
                to: t,
                nth,
            } if f == from && t == to && nth == ordinal => {
                state.fired[id] = true;
                state.report.drops += 1;
                state.report.fired.push(FiredFault {
                    event: id,
                    fault: *event,
                });
                return MessageFate::Drop { event: id };
            }
            FaultEvent::DelayMessage {
                from: f,
                to: t,
                nth,
                held_for,
            } if f == from && t == to && nth == ordinal => {
                state.fired[id] = true;
                state.report.delays += 1;
                state.report.fired.push(FiredFault {
                    event: id,
                    fault: *event,
                });
                return MessageFate::Delay {
                    event: id,
                    held_for,
                };
            }
            _ => {}
        }
    }
    MessageFate::Deliver
}

/// Reports that `rank` reached the start of `generation`; returns the id of a
/// crash event scheduled there, firing it. Fires at most once per event, so a
/// replay from a checkpoint passes the same boundary cleanly. `domain` scopes
/// the plan to one world as in [`message_fate`].
pub fn crash_fault(domain: u64, rank: usize, generation: u64) -> Option<usize> {
    let mut guard = lock_active();
    let state = guard.as_mut()?;
    if state.plan.seed != domain {
        return None;
    }
    for (id, event) in state.plan.events.iter().enumerate() {
        if state.fired[id] {
            continue;
        }
        if let FaultEvent::CrashAtGeneration {
            rank: r,
            generation: g,
        } = *event
        {
            if r == rank && g == generation {
                state.fired[id] = true;
                state.report.crashes += 1;
                state.report.fired.push(FiredFault {
                    event: id,
                    fault: *event,
                });
                return Some(id);
            }
        }
    }
    None
}

/// Reports that `rank` reached the start of `generation`; returns
/// `(event id, yields)` of a slow-rank event scheduled there, firing it.
/// `domain` scopes the plan to one world as in [`message_fate`].
pub fn slow_fault(domain: u64, rank: usize, generation: u64) -> Option<(usize, u32)> {
    let mut guard = lock_active();
    let state = guard.as_mut()?;
    if state.plan.seed != domain {
        return None;
    }
    for (id, event) in state.plan.events.iter().enumerate() {
        if state.fired[id] {
            continue;
        }
        if let FaultEvent::SlowRank {
            rank: r,
            generation: g,
            yields,
        } = *event
        {
            if r == rank && g == generation {
                state.fired[id] = true;
                state.report.stalls += 1;
                state.report.fired.push(FiredFault {
                    event: id,
                    fault: *event,
                });
                return Some((id, yields));
            }
        }
    }
    None
}

/// Counts a stale packet the transport rejected (epoch mismatch after a
/// recovery respawn).
pub fn note_stale_rejected() {
    if let Some(state) = lock_active().as_mut() {
        state.report.stale_rejected += 1;
    }
}

/// Snapshot of the session's counters and fired-event log (empty when no
/// plan is armed).
pub fn injection_report() -> InjectionReport {
    lock_active()
        .as_ref()
        .map(|s| s.report.clone())
        .unwrap_or_default()
}

/// Number of faults fired so far — a cheap progress mark for supervisors
/// classifying what happened between two points in time.
pub fn fired_count() -> usize {
    lock_active().as_ref().map_or(0, |s| s.report.fired.len())
}

/// The fired-event log so far, in firing order.
pub fn fired_events() -> Vec<FiredFault> {
    lock_active()
        .as_ref()
        .map(|s| s.report.fired.clone())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    // A single test body: the switch is process-global, so splitting these
    // cases into parallel #[test]s would race on the armed state.
    #[test]
    fn events_fire_once_and_are_logged() {
        let plan = FaultPlan::new(1)
            .with(FaultEvent::DropMessage {
                from: 2,
                to: 0,
                nth: 1,
            })
            .with(FaultEvent::CrashAtGeneration {
                rank: 3,
                generation: 5,
            })
            .with(FaultEvent::DelayMessage {
                from: 1,
                to: 0,
                nth: 0,
                held_for: 4,
            })
            .with(FaultEvent::SlowRank {
                rank: 0,
                generation: 2,
                yields: 7,
            });
        let session = arm(plan);
        assert!(injection_armed());

        // A different domain (another world in the same process) neither
        // matches events nor consumes channel ordinals.
        assert_eq!(message_fate(99, 2, 0), MessageFate::Deliver);
        assert_eq!(message_fate(99, 2, 0), MessageFate::Deliver);
        assert_eq!(crash_fault(99, 3, 5), None);
        assert_eq!(slow_fault(99, 0, 2), None);

        // Channel (2, 0): message 0 passes, message 1 drops, later ones pass.
        assert_eq!(message_fate(1, 2, 0), MessageFate::Deliver);
        assert_eq!(message_fate(1, 2, 0), MessageFate::Drop { event: 0 });
        assert_eq!(message_fate(1, 2, 0), MessageFate::Deliver);
        // Channel (1, 0): first message is delayed; the ordinal space is per
        // channel, so (2, 0) traffic did not consume it.
        assert_eq!(
            message_fate(1, 1, 0),
            MessageFate::Delay {
                event: 2,
                held_for: 4
            }
        );
        // Crash fires once; the replayed boundary passes clean.
        assert_eq!(crash_fault(1, 3, 5), Some(1));
        assert_eq!(crash_fault(1, 3, 5), None);
        assert_eq!(crash_fault(1, 3, 4), None);
        assert_eq!(slow_fault(1, 0, 2), Some((3, 7)));
        assert_eq!(slow_fault(1, 0, 2), None);
        note_stale_rejected();

        let report = injection_report();
        assert_eq!(report.drops, 1);
        assert_eq!(report.crashes, 1);
        assert_eq!(report.delays, 1);
        assert_eq!(report.stalls, 1);
        assert_eq!(report.stale_rejected, 1);
        assert_eq!(report.fired.len(), 4);
        assert_eq!(fired_count(), 4);
        // Firing order: drop (event 0), delay (event 2), crash (event 1),
        // slow (event 3).
        let order: Vec<usize> = fired_events().iter().map(|f| f.event).collect();
        assert_eq!(order, vec![0, 2, 1, 3]);

        drop(session);
        assert!(!injection_armed());
        assert_eq!(injection_report(), InjectionReport::default());
        assert_eq!(message_fate(1, 0, 1), MessageFate::Deliver);
        assert_eq!(crash_fault(1, 3, 5), None);
        assert_eq!(slow_fault(1, 0, 2), None);
        assert_eq!(fired_count(), 0);
    }
}
