//! Generation-granular checkpoint stores.
//!
//! Stores are byte-oriented: the cluster layer serialises each rank's
//! `SimulationState` (population + RNG stream positions) through the vendored
//! serde codec and hands the bytes here, so the store stays ignorant of the
//! state's shape. Older checkpoints are retained — a supervisor resumes from
//! the newest generation *every* rank has, which may predate a faster rank's
//! latest snapshot.

use egd_core::error::{EgdError, EgdResult};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A store of per-rank, per-generation checkpoint snapshots.
pub trait CheckpointStore: Send + Sync {
    /// Persists `bytes` as rank `rank`'s snapshot at `generation`,
    /// overwriting any previous snapshot at the same coordinates.
    fn save(&self, rank: usize, generation: u64, bytes: &[u8]) -> EgdResult<()>;

    /// Loads rank `rank`'s snapshot at `generation`, if present.
    fn load(&self, rank: usize, generation: u64) -> EgdResult<Option<Vec<u8>>>;

    /// The generations rank `rank` has snapshots for, ascending.
    fn generations(&self, rank: usize) -> EgdResult<Vec<u64>>;

    /// The newest generation rank `rank` has a snapshot for.
    fn latest(&self, rank: usize) -> EgdResult<Option<u64>> {
        Ok(self.generations(rank)?.last().copied())
    }
}

/// In-memory checkpoint store — the default for tests and supervised runs
/// inside one process.
#[derive(Debug, Default)]
pub struct MemoryStore {
    inner: Mutex<HashMap<(usize, u64), Vec<u8>>>,
}

impl MemoryStore {
    /// An empty store.
    pub fn new() -> Self {
        MemoryStore::default()
    }

    /// Number of snapshots held.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the store holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<(usize, u64), Vec<u8>>> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl CheckpointStore for MemoryStore {
    fn save(&self, rank: usize, generation: u64, bytes: &[u8]) -> EgdResult<()> {
        self.lock().insert((rank, generation), bytes.to_vec());
        Ok(())
    }

    fn load(&self, rank: usize, generation: u64) -> EgdResult<Option<Vec<u8>>> {
        Ok(self.lock().get(&(rank, generation)).cloned())
    }

    fn generations(&self, rank: usize) -> EgdResult<Vec<u64>> {
        let mut generations: Vec<u64> = self
            .lock()
            .keys()
            .filter(|(r, _)| *r == rank)
            .map(|(_, g)| *g)
            .collect();
        generations.sort_unstable();
        Ok(generations)
    }
}

/// On-disk checkpoint store: one file per `(rank, generation)` under a root
/// directory (`rank-<R>/gen-<G>.ckpt`). Survives the process, so a restart
/// can resume a run the previous process checkpointed.
#[derive(Debug)]
pub struct DirStore {
    root: PathBuf,
    /// Set when this store created its directory under the system temp dir;
    /// such directories are removed on drop.
    owns_root: bool,
}

fn io_err(context: &str, e: std::io::Error) -> EgdError {
    EgdError::Communication {
        reason: format!("checkpoint store: {context}: {e}"),
    }
}

impl DirStore {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> EgdResult<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| io_err(&format!("create {}", root.display()), e))?;
        Ok(DirStore {
            root,
            owns_root: false,
        })
    }

    /// Creates a store in a fresh process-unique directory under the system
    /// temp dir; the directory is removed when the store drops.
    pub fn tempdir() -> EgdResult<Self> {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let root = std::env::temp_dir().join(format!("egd-fault-ckpt-{}-{n}", std::process::id()));
        let mut store = DirStore::new(root)?;
        store.owns_root = true;
        Ok(store)
    }

    /// The store's root directory.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    fn rank_dir(&self, rank: usize) -> PathBuf {
        self.root.join(format!("rank-{rank}"))
    }

    fn snapshot_path(&self, rank: usize, generation: u64) -> PathBuf {
        self.rank_dir(rank).join(format!("gen-{generation}.ckpt"))
    }
}

impl Drop for DirStore {
    fn drop(&mut self) {
        if self.owns_root {
            let _ = std::fs::remove_dir_all(&self.root);
        }
    }
}

impl CheckpointStore for DirStore {
    fn save(&self, rank: usize, generation: u64, bytes: &[u8]) -> EgdResult<()> {
        let dir = self.rank_dir(rank);
        std::fs::create_dir_all(&dir)
            .map_err(|e| io_err(&format!("create {}", dir.display()), e))?;
        let path = self.snapshot_path(rank, generation);
        // Write-then-rename so a crash mid-write never leaves a truncated
        // snapshot that a resume would try to parse.
        let tmp = path.with_extension("ckpt.tmp");
        std::fs::write(&tmp, bytes).map_err(|e| io_err(&format!("write {}", tmp.display()), e))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| io_err(&format!("rename to {}", path.display()), e))
    }

    fn load(&self, rank: usize, generation: u64) -> EgdResult<Option<Vec<u8>>> {
        let path = self.snapshot_path(rank, generation);
        match std::fs::read(&path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err(&format!("read {}", path.display()), e)),
        }
    }

    fn generations(&self, rank: usize) -> EgdResult<Vec<u64>> {
        let dir = self.rank_dir(rank);
        let entries = match std::fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(io_err(&format!("list {}", dir.display()), e)),
        };
        let mut generations = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&format!("list {}", dir.display()), e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(generation) = name
                .strip_prefix("gen-")
                .and_then(|rest| rest.strip_suffix(".ckpt"))
                .and_then(|g| g.parse::<u64>().ok())
            {
                generations.push(generation);
            }
        }
        generations.sort_unstable();
        Ok(generations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn CheckpointStore) {
        assert_eq!(store.latest(0).unwrap(), None);
        store.save(0, 0, b"zero").unwrap();
        store.save(0, 4, b"four").unwrap();
        store.save(0, 2, b"two").unwrap();
        store.save(1, 2, b"other rank").unwrap();
        assert_eq!(store.generations(0).unwrap(), vec![0, 2, 4]);
        assert_eq!(store.latest(0).unwrap(), Some(4));
        assert_eq!(store.latest(1).unwrap(), Some(2));
        assert_eq!(store.latest(7).unwrap(), None);
        assert_eq!(store.load(0, 2).unwrap().as_deref(), Some(&b"two"[..]));
        assert_eq!(store.load(0, 3).unwrap(), None);
        // Overwrite at the same coordinates wins.
        store.save(0, 4, b"four v2").unwrap();
        assert_eq!(store.load(0, 4).unwrap().as_deref(), Some(&b"four v2"[..]));
    }

    #[test]
    fn memory_store_round_trips() {
        let store = MemoryStore::new();
        assert!(store.is_empty());
        exercise(&store);
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn dir_store_round_trips_and_cleans_its_tempdir() {
        let store = DirStore::tempdir().unwrap();
        let root = store.root().to_path_buf();
        exercise(&store);
        assert!(root.exists());
        drop(store);
        assert!(!root.exists());
    }

    #[test]
    fn dir_store_persists_across_reopen() {
        let tempdir = DirStore::tempdir().unwrap();
        let root = tempdir.root().join("nested");
        {
            let store = DirStore::new(&root).unwrap();
            store.save(3, 10, b"snapshot").unwrap();
        }
        let reopened = DirStore::new(&root).unwrap();
        assert_eq!(reopened.latest(3).unwrap(), Some(10));
        assert_eq!(
            reopened.load(3, 10).unwrap().as_deref(),
            Some(&b"snapshot"[..])
        );
    }
}
