//! The parallel simulation driver.
//!
//! [`ParallelSimulation`] is the shared-memory counterpart of
//! [`egd_core::simulation::Simulation`]: the same generation loop (game
//! dynamics → Nature Agent decision → strategy-view update) with the fitness
//! phase executed on a thread pool. For any thread count it follows the exact
//! same trajectory as the sequential reference.

use crate::engine::{GenerationTiming, ParallelEngine};
use crate::thread_pool::ThreadConfig;
use egd_core::config::SimulationConfig;
use egd_core::dynamics::{GenerationDecision, NatureAgent};
use egd_core::error::{EgdError, EgdResult};
use egd_core::metrics::{FitnessStats, GenerationRecord};
use egd_core::population::Population;
use egd_core::simulation::{FitnessMode, SimulationState};
use egd_sched::SchedStats;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Report of a completed parallel run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelReport {
    /// Number of generations simulated.
    pub generations_run: u64,
    /// Number of generations in which the population changed.
    pub generations_with_change: u64,
    /// Fraction of SSets holding the dominant strategy at the end.
    pub final_dominant_fraction: f64,
    /// Number of distinct strategies at the end.
    pub final_distinct_strategies: usize,
    /// Fitness statistics of the final generation.
    pub final_fitness: Option<FitnessStats>,
    /// Periodic history snapshots.
    pub history: Vec<GenerationRecord>,
    /// Accumulated wall-clock breakdown.
    pub timing: GenerationTiming,
    /// Number of worker threads used.
    pub threads: usize,
    /// Scheduler statistics accumulated over the run (steal counts,
    /// per-worker busy/CPU time); `None` if no generation ran.
    pub sched: Option<SchedStats>,
}

/// The shared-memory parallel simulation.
#[derive(Debug)]
pub struct ParallelSimulation {
    config: SimulationConfig,
    population: Population,
    nature: NatureAgent,
    engine: ParallelEngine,
    generation: u64,
    last_fitness: Vec<f64>,
    record_interval: u64,
    timing: GenerationTiming,
    sched: Option<SchedStats>,
}

impl ParallelSimulation {
    /// Creates a parallel simulation with a random initial population.
    pub fn new(config: SimulationConfig, threads: ThreadConfig) -> EgdResult<Self> {
        Self::with_fitness_mode(config, threads, FitnessMode::Simulated)
    }

    /// Creates a parallel simulation with an explicit fitness mode.
    pub fn with_fitness_mode(
        config: SimulationConfig,
        threads: ThreadConfig,
        mode: FitnessMode,
    ) -> EgdResult<Self> {
        config.validate()?;
        let population = config.initial_population()?;
        Self::with_population(config, population, threads, mode)
    }

    /// Creates a parallel simulation starting from an explicit population.
    pub fn with_population(
        config: SimulationConfig,
        population: Population,
        threads: ThreadConfig,
        mode: FitnessMode,
    ) -> EgdResult<Self> {
        config.validate()?;
        if population.num_ssets() != config.num_ssets {
            return Err(EgdError::InvalidConfig {
                reason: format!(
                    "population has {} SSets but the configuration expects {}",
                    population.num_ssets(),
                    config.num_ssets
                ),
            });
        }
        if population.memory() != config.memory {
            return Err(EgdError::InvalidConfig {
                reason: "population memory depth does not match the configuration".to_string(),
            });
        }
        let nature = config.nature_agent()?;
        let engine = ParallelEngine::new(&config, mode, threads)?;
        Ok(ParallelSimulation {
            config,
            population,
            nature,
            engine,
            generation: 0,
            last_fitness: Vec::new(),
            record_interval: 0,
            timing: GenerationTiming::default(),
            sched: None,
        })
    }

    /// Rebuilds a parallel simulation from a checkpointed state, verifying
    /// that the snapshot matches `config` (seed, population shape) and that
    /// its RNG stream positions re-derive exactly. Because every random
    /// decision of generation `g` draws from substreams keyed by
    /// `(seed, g)`, the resumed trajectory is bit-identical to an
    /// uninterrupted run for any thread count. Payoff caches start cold —
    /// they are a performance device, not semantic state.
    pub fn restore(
        config: SimulationConfig,
        state: &SimulationState,
        threads: ThreadConfig,
        mode: FitnessMode,
    ) -> EgdResult<Self> {
        if config.seed != state.seed {
            return Err(EgdError::InvalidConfig {
                reason: format!(
                    "checkpoint was taken under seed {} but the configuration has seed {}",
                    state.seed, config.seed
                ),
            });
        }
        state.verify_streams()?;
        let mut sim = Self::with_population(config, state.population.clone(), threads, mode)?;
        sim.generation = state.generation;
        Ok(sim)
    }

    /// Records a history snapshot every `interval` generations (0 disables).
    pub fn set_record_interval(&mut self, interval: u64) {
        self.record_interval = interval;
    }

    /// The configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The current population.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// The current generation index.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The fitness table of the most recently completed generation.
    pub fn last_fitness(&self) -> &[f64] {
        &self.last_fitness
    }

    /// The engine (for cache statistics).
    pub fn engine(&self) -> &ParallelEngine {
        &self.engine
    }

    /// Accumulated wall-clock breakdown.
    pub fn timing(&self) -> GenerationTiming {
        self.timing
    }

    /// Scheduler statistics accumulated since the simulation started.
    pub fn sched_stats(&self) -> Option<&SchedStats> {
        self.sched.as_ref()
    }

    /// Runs one generation, returning the Nature Agent's decision.
    pub fn step(&mut self) -> EgdResult<GenerationDecision> {
        let game_start = Instant::now();
        let fitness = self
            .engine
            .compute_fitness(&self.population, self.generation)?;
        let game_play = game_start.elapsed();
        if let Some(stats) = self.engine.last_sched_stats() {
            match self.sched.as_mut() {
                Some(total) => total.merge(&stats),
                None => self.sched = Some(stats),
            }
        }

        let dynamics_start = Instant::now();
        let decision = self
            .nature
            .evolve(self.generation, &fitness, &mut self.population)?;
        let dynamics = dynamics_start.elapsed();

        self.timing.merge(&GenerationTiming {
            game_play,
            dynamics,
        });
        self.last_fitness = fitness;
        self.generation += 1;
        Ok(decision)
    }

    /// Runs `generations` additional generations.
    pub fn run_for(&mut self, generations: u64) -> EgdResult<ParallelReport> {
        let mut history = Vec::new();
        let mut changes = 0u64;
        for _ in 0..generations {
            let decision = self.step()?;
            if decision.changes_population() {
                changes += 1;
            }
            if self.record_interval > 0 && self.generation.is_multiple_of(self.record_interval) {
                history.push(self.snapshot(decision.changes_population()));
            }
        }
        let (_, dominant_fraction) = self.population.dominant_strategy();
        Ok(ParallelReport {
            generations_run: generations,
            generations_with_change: changes,
            final_dominant_fraction: dominant_fraction,
            final_distinct_strategies: self.population.census().len(),
            final_fitness: FitnessStats::from_slice(&self.last_fitness),
            history,
            timing: self.timing,
            threads: self.engine.thread_config().effective_threads(),
            sched: self.sched.clone(),
        })
    }

    /// Runs the number of generations specified in the configuration.
    pub fn run(&mut self) -> ParallelReport {
        self.run_for(self.config.generations)
            .expect("a validated configuration cannot fail mid-run")
    }

    fn snapshot(&self, population_changed: bool) -> GenerationRecord {
        let census = self.population.census();
        GenerationRecord {
            generation: self.generation,
            fitness: FitnessStats::from_slice(&self.last_fitness).unwrap_or(FitnessStats {
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                std_dev: 0.0,
                count: 0,
            }),
            dominant_fraction: census[0].count as f64 / self.population.num_ssets() as f64,
            distinct_strategies: census.len(),
            cooperation_propensity: self.population.mean_cooperation_propensity(),
            population_changed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egd_core::simulation::Simulation;
    use egd_core::state::MemoryDepth;

    fn config(seed: u64) -> SimulationConfig {
        SimulationConfig::builder()
            .memory(MemoryDepth::ONE)
            .num_ssets(16)
            .agents_per_sset(2)
            .rounds_per_game(30)
            .generations(60)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn parallel_trajectory_matches_sequential_reference() {
        let cfg = config(21);
        let mut sequential = Simulation::new(cfg.clone()).unwrap();
        let mut parallel = ParallelSimulation::new(cfg, ThreadConfig::with_threads(4)).unwrap();
        sequential.run();
        parallel.run();
        assert_eq!(sequential.population(), parallel.population());
        assert_eq!(sequential.last_fitness(), parallel.last_fitness());
    }

    #[test]
    fn thread_count_does_not_change_trajectory() {
        let cfg = config(22);
        let mut one = ParallelSimulation::new(cfg.clone(), ThreadConfig::sequential()).unwrap();
        let mut four = ParallelSimulation::new(cfg, ThreadConfig::with_threads(4)).unwrap();
        let r1 = one.run();
        let r4 = four.run();
        assert_eq!(one.population(), four.population());
        assert_eq!(r1.generations_with_change, r4.generations_with_change);
        assert_eq!(r1.final_dominant_fraction, r4.final_dominant_fraction);
    }

    #[test]
    fn report_contains_timing_and_history() {
        let cfg = config(23);
        let mut sim = ParallelSimulation::new(cfg, ThreadConfig::with_threads(2)).unwrap();
        sim.set_record_interval(20);
        let report = sim.run_for(60).unwrap();
        assert_eq!(report.generations_run, 60);
        assert_eq!(report.history.len(), 3);
        assert_eq!(report.threads, 2);
        assert!(report.timing.total().as_nanos() > 0);
        assert!(report.final_fitness.is_some());
        let sched = report.sched.expect("scheduler stats accumulate");
        assert!(sched.items > 0);
        assert!(sched.num_workers() >= 1);
    }

    #[test]
    fn with_population_validates_shape() {
        let cfg = config(24);
        let wrong = egd_core::population::Population::random(
            egd_core::strategy::StrategySpace::pure(MemoryDepth::ONE),
            4,
            2,
            0,
        )
        .unwrap();
        assert!(ParallelSimulation::with_population(
            cfg,
            wrong,
            ThreadConfig::sequential(),
            FitnessMode::Simulated
        )
        .is_err());
    }

    #[test]
    fn restore_resumes_bit_identical_to_straight_run() {
        let cfg = config(31);
        let mut golden =
            ParallelSimulation::new(cfg.clone(), ThreadConfig::with_threads(4)).unwrap();
        golden.run_for(60).unwrap();

        let mut first_leg =
            ParallelSimulation::new(cfg.clone(), ThreadConfig::with_threads(4)).unwrap();
        first_leg.run_for(25).unwrap();
        let state =
            SimulationState::capture(cfg.seed, first_leg.generation(), 0, first_leg.population());
        let bytes = state.to_bytes().unwrap();
        let reloaded = SimulationState::from_bytes(&bytes).unwrap();

        // Resume with a different thread count: trajectory must not care.
        let mut resumed = ParallelSimulation::restore(
            cfg.clone(),
            &reloaded,
            ThreadConfig::with_threads(2),
            FitnessMode::Simulated,
        )
        .unwrap();
        assert_eq!(resumed.generation(), 25);
        resumed.run_for(35).unwrap();
        assert_eq!(resumed.population(), golden.population());
        assert_eq!(resumed.last_fitness(), golden.last_fitness());

        // A mismatched seed is rejected.
        let other = config(32);
        assert!(ParallelSimulation::restore(
            other,
            &reloaded,
            ThreadConfig::sequential(),
            FitnessMode::Simulated
        )
        .is_err());
    }

    #[test]
    fn noisy_config_still_reproducible_across_thread_counts() {
        let cfg = SimulationConfig::builder()
            .memory(MemoryDepth::ONE)
            .num_ssets(12)
            .agents_per_sset(2)
            .rounds_per_game(20)
            .generations(40)
            .noise(0.02)
            .seed(77)
            .build()
            .unwrap();
        let mut a = ParallelSimulation::new(cfg.clone(), ThreadConfig::sequential()).unwrap();
        let mut b = ParallelSimulation::new(cfg, ThreadConfig::with_threads(8)).unwrap();
        a.run();
        b.run();
        assert_eq!(a.population(), b.population());
    }
}
