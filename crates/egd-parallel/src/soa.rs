//! Structure-of-arrays population view for the cell-matrix loop.
//!
//! The grouped fitness path used to walk `Agent`/`StrategyKind` values per
//! SSet while reducing the pair-payoff matrix: every SSet re-derived its
//! group, then gathered `G` payoff cells — `O(N·G)` pointer-chasing work
//! even though SSets of the same group compute the *same* total.
//! [`PopulationSoA`] collapses the population once per generation into
//! dense lanes (group membership, representative indices, multiplicities,
//! fingerprints, determinism flags) so the engine streams:
//!
//! * the cell loop reads group fingerprints from a dense `u64` lane (the
//!   measured-cost table and the payoff-cache keys want exactly those), and
//! * the fitness reduction accumulates **per-group** fitness lanes in one
//!   `O(G²)` sweep over the payoff matrix, then scatters them to SSets
//!   through the `group_of` lane in `O(N)`.
//!
//! The per-group accumulation performs the identical f64 additions in the
//! identical order as the old per-SSet loop (ascending `h`, then the
//! self-play correction), so fitness vectors stay bit-identical — it just
//! computes each group's sum once instead of once per member SSet.

use crate::grouping::StrategyGrouping;
use egd_core::strategy::{Strategy, StrategyKind};

/// A population collapsed to dense per-group and per-SSet lanes.
#[derive(Debug, Clone)]
pub struct PopulationSoA {
    /// `group_of[sset]` — group index of each SSet (per-SSet lane).
    pub group_of: Vec<usize>,
    /// `group_rep[g]` — first SSet index holding group `g`'s strategy.
    pub group_rep: Vec<usize>,
    /// `group_count[g]` — SSets in group `g`, ready for fitness sums.
    pub group_count: Vec<f64>,
    /// `fingerprints[g]` — fingerprint of group `g`'s strategy.
    pub fingerprints: Vec<u64>,
    /// `deterministic[g]` — whether group `g`'s strategy is deterministic.
    pub deterministic: Vec<bool>,
}

impl PopulationSoA {
    /// Collapses `strategies` into the SoA view (first-occurrence group
    /// order, identical to [`StrategyGrouping::of`]).
    pub fn of(strategies: &[StrategyKind]) -> Self {
        let StrategyGrouping {
            group_of,
            group_rep,
            group_count,
        } = StrategyGrouping::of(strategies);
        let fingerprints = group_rep
            .iter()
            .map(|&i| strategies[i].fingerprint())
            .collect();
        let deterministic = group_rep
            .iter()
            .map(|&i| strategies[i].is_deterministic())
            .collect();
        PopulationSoA {
            group_of,
            group_rep,
            group_count,
            fingerprints,
            deterministic,
        }
    }

    /// Number of distinct strategy groups.
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.group_rep.len()
    }

    /// Number of SSets in the population.
    #[inline]
    pub fn num_ssets(&self) -> usize {
        self.group_of.len()
    }

    /// Streams the `G×G` payoff matrix (engine cell order,
    /// `pay[g * G + h]` = payoff to `g` against `h`) into per-group fitness
    /// lanes: `Σ_h count[h]·pay[g][h]`, minus the self-play cell unless
    /// `include_self`. Same additions in the same order as the historical
    /// per-SSet loop.
    pub fn group_fitness(&self, pay: &[f64], include_self: bool) -> Vec<f64> {
        let num_groups = self.num_groups();
        debug_assert_eq!(pay.len(), num_groups * num_groups);
        let mut lanes = Vec::with_capacity(num_groups);
        for g in 0..num_groups {
            let row = &pay[g * num_groups..(g + 1) * num_groups];
            let mut total = 0.0;
            for (h, &p) in row.iter().enumerate() {
                total += self.group_count[h] * p;
            }
            if !include_self {
                total -= row[g];
            }
            lanes.push(total);
        }
        lanes
    }

    /// Scatters per-group fitness lanes back to per-SSet fitness through the
    /// `group_of` lane.
    pub fn scatter(&self, group_fitness: &[f64]) -> Vec<f64> {
        debug_assert_eq!(group_fitness.len(), self.num_groups());
        self.group_of.iter().map(|&g| group_fitness[g]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egd_core::state::MemoryDepth;
    use egd_core::strategy::{MixedStrategy, PureStrategy};

    fn strategy(bits: &str) -> StrategyKind {
        StrategyKind::Pure(PureStrategy::from_bitstring(MemoryDepth::ONE, bits).unwrap())
    }

    #[test]
    fn soa_view_matches_grouping() {
        let strategies = vec![
            strategy("0110"),
            StrategyKind::Mixed(MixedStrategy::uniform(MemoryDepth::ONE, 0.5).unwrap()),
            strategy("0110"),
            strategy("0000"),
        ];
        let soa = PopulationSoA::of(&strategies);
        assert_eq!(soa.num_groups(), 3);
        assert_eq!(soa.num_ssets(), 4);
        assert_eq!(soa.group_of, vec![0, 1, 0, 2]);
        assert_eq!(soa.group_count, vec![2.0, 1.0, 1.0]);
        assert_eq!(soa.fingerprints[0], strategies[0].fingerprint());
        assert_eq!(soa.fingerprints[1], strategies[1].fingerprint());
        assert!(soa.deterministic[0]);
        assert!(!soa.deterministic[1]);
    }

    #[test]
    fn group_fitness_matches_per_sset_reference() {
        let strategies = vec![
            strategy("0110"),
            strategy("1111"),
            strategy("0110"),
            strategy("0000"),
            strategy("1111"),
        ];
        let soa = PopulationSoA::of(&strategies);
        let num_groups = soa.num_groups();
        let pay: Vec<f64> = (0..num_groups * num_groups)
            .map(|i| (i as f64) * 0.37 + 1.0)
            .collect();
        for include_self in [false, true] {
            let lanes = soa.group_fitness(&pay, include_self);
            let fitness = soa.scatter(&lanes);
            // Reference: the historical per-SSet loop.
            for (i, &g) in soa.group_of.iter().enumerate() {
                let mut total = 0.0;
                for h in 0..num_groups {
                    total += soa.group_count[h] * pay[g * num_groups + h];
                }
                if !include_self {
                    total -= pay[g * num_groups + g];
                }
                assert_eq!(total.to_bits(), fitness[i].to_bits());
            }
        }
    }
}
