//! Thread-pool configuration for the shared-memory level of the hierarchy.
//!
//! The paper runs a hybrid MPI + OpenMP code and reports that on Blue Gene/Q
//! the best configuration was 32 tasks × 2 threads per node (§VI-C). Here the
//! OpenMP level maps onto a rayon thread pool whose size is chosen per
//! engine, so scaling studies can sweep the thread count explicitly. The
//! pool's iterators execute on the `egd-sched` work-stealing scheduler;
//! [`ThreadConfig::policy`] selects between adaptive stealing (default) and
//! the legacy static one-chunk-per-worker split (for load-balance A/B
//! studies). Either way results are byte-identical.

use egd_core::error::{EgdError, EgdResult};
pub use egd_sched::Policy as SchedPolicy;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of the worker thread pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadConfig {
    /// Number of worker threads; `0` means "use all available parallelism".
    pub num_threads: usize,
    /// Work-distribution policy of the scheduler backing the pool.
    pub policy: SchedPolicy,
}

impl ThreadConfig {
    /// Use every core the runtime reports.
    pub const AUTO: ThreadConfig = ThreadConfig {
        num_threads: 0,
        policy: SchedPolicy::Adaptive,
    };

    /// Creates a configuration with an explicit thread count.
    pub const fn with_threads(num_threads: usize) -> Self {
        ThreadConfig {
            num_threads,
            policy: SchedPolicy::Adaptive,
        }
    }

    /// Single-threaded execution (useful for determinism A/B tests).
    pub const fn sequential() -> Self {
        ThreadConfig {
            num_threads: 1,
            policy: SchedPolicy::Adaptive,
        }
    }

    /// Returns the same configuration with a different scheduling policy.
    pub const fn with_policy(mut self, policy: SchedPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The number of threads this configuration will actually use.
    pub fn effective_threads(&self) -> usize {
        if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        }
    }

    /// Builds the rayon thread pool described by this configuration.
    pub fn build_pool(&self) -> EgdResult<Arc<rayon::ThreadPool>> {
        rayon::ThreadPoolBuilder::new()
            .num_threads(self.num_threads)
            .thread_name(|i| format!("egd-worker-{i}"))
            .build()
            .map(Arc::new)
            .map_err(|e| EgdError::InvalidConfig {
                reason: format!("failed to build thread pool: {e}"),
            })
    }
}

impl Default for ThreadConfig {
    fn default() -> Self {
        ThreadConfig::AUTO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_explicit() {
        assert_eq!(ThreadConfig::with_threads(4).effective_threads(), 4);
        assert_eq!(ThreadConfig::sequential().effective_threads(), 1);
    }

    #[test]
    fn effective_threads_auto_is_positive() {
        assert!(ThreadConfig::AUTO.effective_threads() >= 1);
        assert_eq!(ThreadConfig::default(), ThreadConfig::AUTO);
    }

    #[test]
    fn build_pool_respects_thread_count() {
        let pool = ThreadConfig::with_threads(3).build_pool().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
    }

    #[test]
    fn pool_runs_work() {
        let pool = ThreadConfig::with_threads(2).build_pool().unwrap();
        let sum: u64 = pool.install(|| {
            use rayon::prelude::*;
            (0..1000u64).into_par_iter().sum()
        });
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn build_pool_auto_uses_available_parallelism() {
        let pool = ThreadConfig::AUTO.build_pool().unwrap();
        assert_eq!(
            pool.current_num_threads(),
            ThreadConfig::AUTO.effective_threads()
        );
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn build_pool_sequential_has_one_thread() {
        let pool = ThreadConfig::sequential().build_pool().unwrap();
        assert_eq!(pool.current_num_threads(), 1);
        assert_eq!(pool.install(|| 6 * 7), 42);
    }

    #[test]
    fn policy_defaults_to_adaptive_and_is_overridable() {
        assert_eq!(ThreadConfig::AUTO.policy, SchedPolicy::Adaptive);
        let fixed = ThreadConfig::with_threads(4).with_policy(SchedPolicy::Static);
        assert_eq!(fixed.policy, SchedPolicy::Static);
        assert_eq!(fixed.num_threads, 4);
    }

    #[test]
    fn pools_of_different_sizes_agree_on_results() {
        use rayon::prelude::*;
        let work = || {
            (0..512u64)
                .into_par_iter()
                .map(|x| x * x)
                .collect::<Vec<u64>>()
        };
        let sequential = ThreadConfig::sequential()
            .build_pool()
            .unwrap()
            .install(work);
        for threads in [2, 3, 8] {
            let parallel = ThreadConfig::with_threads(threads)
                .build_pool()
                .unwrap()
                .install(work);
            assert_eq!(parallel, sequential, "{threads} threads");
        }
    }
}
