//! The parallel generation engine.
//!
//! [`ParallelEngine`] computes the per-SSet fitness of one generation on a
//! rayon thread pool. Two equivalent execution paths are provided:
//!
//! * [`ParallelEngine::compute_fitness`] — the production path. Strategies
//!   are grouped (SSets holding identical strategies share their pair
//!   payoffs) and the distinct-pair payoff matrix is evaluated in parallel.
//!   This matches `egd_core::simulation::compute_generation_fitness`
//!   bit-for-bit, so sequential and parallel runs are interchangeable.
//! * [`ParallelEngine::compute_fitness_via_plan`] — the paper-faithful
//!   agent-level path: every agent's chunk of opponent games is an
//!   independent work item ([`crate::partition::WorkPlan`]), partial fitness
//!   sums are reduced per worker in fixed order. Used by the ablation
//!   benchmarks that quantify what the SSet grouping buys.

use crate::cache::ConcurrentPairEvaluator;
use crate::partition::WorkPlan;
use crate::reduction::reduce_partials;
use crate::soa::PopulationSoA;
use crate::stochastic::{StochasticBlock, StochasticScratch};
use crate::thread_pool::ThreadConfig;
use egd_core::config::SimulationConfig;
use egd_core::error::EgdResult;
use egd_core::population::Population;
use egd_core::simulation::FitnessMode;
use egd_core::sset::OpponentPolicy;
use egd_cost::predict::MeasuredEwma;
use egd_obs::{MeasuredCosts, MetricsSnapshot, SpanKind, SpanTimer};
use egd_sched::SchedStats;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// Wall-clock breakdown of one generation, mirroring the paper's
/// computation/communication split (Fig. 5) for the shared-memory engine
/// (where "dynamics" plays the role of the global synchronisation).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GenerationTiming {
    /// Time spent playing games (the parallel section).
    pub game_play: Duration,
    /// Time spent in population dynamics and strategy-view updates
    /// (the serial / synchronisation section).
    pub dynamics: Duration,
}

impl GenerationTiming {
    /// Total wall-clock time of the generation.
    pub fn total(&self) -> Duration {
        self.game_play + self.dynamics
    }

    /// Adds another timing sample into this one.
    pub fn merge(&mut self, other: &GenerationTiming) {
        self.game_play += other.game_play;
        self.dynamics += other.dynamics;
    }
}

/// Per-worker reusable buffers for the agent-plan fitness path: the
/// stochastic game scratch plus the block bookkeeping vectors.
#[derive(Debug, Default)]
struct PlanScratch {
    /// `(position in block, opponent index)` of each stochastic pairing.
    stochastic: Vec<(usize, usize)>,
    /// Opponent indices handed to the block kernel.
    opp_indices: Vec<usize>,
    /// Per-opponent payoffs in block order (cacheable + stochastic merged).
    to_me: Vec<f64>,
    /// SoA result buffers of the stochastic block kernel.
    games: StochasticScratch,
}

/// The parallel fitness engine.
#[derive(Debug)]
pub struct ParallelEngine {
    pool: Arc<rayon::ThreadPool>,
    evaluator: ConcurrentPairEvaluator,
    threads: ThreadConfig,
    /// Prices work items for the cost-guided initial partition (fixed
    /// Blue Gene-like constants: deterministic, machine-independent).
    cost_model: egd_cost::CostModel,
    /// Scheduler statistics of the most recent fitness computation.
    last_sched: Mutex<Option<SchedStats>>,
    /// Measured per-cell wall time keyed by fingerprint pair, accumulated
    /// while tracing is enabled (the feedback table the cost layer can
    /// calibrate against).
    measured: Mutex<MeasuredCosts>,
    /// Optional measured-cost repricing (off by default): when set, the
    /// measured means are folded into this EWMA at the start of every
    /// fitness call and seed the stochastic cell weights of the cost-guided
    /// partition. Steers only the schedule, never the results.
    repricing: Mutex<Option<MeasuredEwma>>,
}

impl ParallelEngine {
    /// Creates an engine for a configuration.
    pub fn new(
        config: &SimulationConfig,
        mode: FitnessMode,
        threads: ThreadConfig,
    ) -> EgdResult<Self> {
        Ok(ParallelEngine {
            pool: threads.build_pool()?,
            evaluator: ConcurrentPairEvaluator::new(config, mode)?,
            threads,
            cost_model: egd_cost::CostModel::blue_gene_like(),
            last_sched: Mutex::new(None),
            measured: Mutex::new(MeasuredCosts::default()),
            repricing: Mutex::new(None),
        })
    }

    /// Enables measured-cost repricing with smoothing factor `alpha`: cell
    /// means accumulated while tracing (see
    /// [`ParallelEngine::measured_costs`]) are folded into an EWMA before
    /// each fitness call and replace the analytic prices of *observed
    /// stochastic* cells in the cost-guided partition. Off by default.
    /// Repricing can never change fitness — predictions steer only the
    /// schedule, and results flow through the deterministic reduction.
    pub fn enable_measured_repricing(&self, alpha: f64) {
        *self.repricing.lock() = Some(MeasuredEwma::new(alpha));
    }

    /// Disables measured-cost repricing and drops the EWMA table.
    pub fn disable_measured_repricing(&self) {
        *self.repricing.lock() = None;
    }

    /// Number of cells currently repriced from measurements (0 while the
    /// flag is off or before anything has been measured).
    pub fn repriced_cells(&self) -> usize {
        self.repricing.lock().as_ref().map_or(0, MeasuredEwma::len)
    }

    /// The cost model pricing the engine's initial partitions.
    pub fn cost_model(&self) -> &egd_cost::CostModel {
        &self.cost_model
    }

    /// The thread configuration in use.
    pub fn thread_config(&self) -> ThreadConfig {
        self.threads
    }

    /// The underlying pair evaluator (cache statistics).
    pub fn evaluator(&self) -> &ConcurrentPairEvaluator {
        &self.evaluator
    }

    /// Scheduler statistics (steal counts, per-worker busy/CPU time) of the
    /// most recent fitness computation, merged over its parallel sections.
    pub fn last_sched_stats(&self) -> Option<SchedStats> {
        self.last_sched.lock().clone()
    }

    /// Measured per-cell wall time keyed by `(fingerprint_a, fingerprint_b)`,
    /// accumulated across fitness calls while span tracing is enabled. Empty
    /// when tracing never ran. The cost layer can calibrate its predicted
    /// cell weights against these means.
    pub fn measured_costs(&self) -> MeasuredCosts {
        self.measured.lock().clone()
    }

    /// Takes (and clears) the accumulated measured-cost table.
    pub fn take_measured_costs(&self) -> MeasuredCosts {
        std::mem::take(&mut *self.measured.lock())
    }

    /// The engine's unified metrics snapshot: the scheduler worker table of
    /// the most recent fitness computation plus pair-cache and interner
    /// counters.
    pub fn metrics(&self, label: &str) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::labelled(label);
        snap.run.workers = self.threads.effective_threads() as u64;
        if let Some(stats) = self.last_sched_stats() {
            for row in stats.worker_metrics() {
                snap.record_worker(row);
            }
        }
        snap.add_counter("pair_cache_hits", self.evaluator.cache_hits());
        snap.add_counter("pair_cache_misses", self.evaluator.cache_misses());
        snap.add_counter("pair_cache_entries", self.evaluator.cached_pairs() as u64);
        snap.add_counter(
            "interned_strategies",
            self.evaluator.interned_strategies() as u64,
        );
        snap.add_counter("strategy_compiles", self.evaluator.strategy_compiles());
        snap.add_counter(
            "measured_cost_samples",
            self.measured.lock().total_samples(),
        );
        snap
    }

    /// Runs `op` inside the engine's pool with the configured scheduling
    /// policy active, then banks the run's scheduler statistics.
    fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let _ = egd_sched::take_last_run_stats();
        let result = self
            .pool
            .install(|| egd_sched::with_policy(self.threads.policy, op));
        if let Some(stats) = egd_sched::take_last_run_stats() {
            let mut slot = self.last_sched.lock();
            match slot.as_mut() {
                Some(total) => total.merge(&stats),
                None => *slot = Some(stats),
            }
        }
        result
    }

    /// Clears the banked scheduler statistics (start of a fitness call).
    fn reset_sched_stats(&self) {
        *self.last_sched.lock() = None;
    }

    /// Computes the fitness of every SSet for `generation` using strategy
    /// grouping (production path).
    pub fn compute_fitness(&self, population: &Population, generation: u64) -> EgdResult<Vec<f64>> {
        self.reset_sched_stats();
        let strategies = population.strategies();

        // Collapse the population into dense SoA lanes once per generation
        // (same first-occurrence group order as the sequential reference):
        // the cell loop streams the fingerprint lane, the reduction streams
        // group counts and the `group_of` scatter lane.
        let soa = PopulationSoA::of(strategies);
        let num_groups = soa.num_groups();

        // Hoist per-strategy work (fingerprints, determinism, compiled
        // tables) out of the cell loop: computed once per distinct strategy
        // per generation instead of once per matrix cell. The SoA lanes are
        // handed over instead of being re-derived per strategy.
        let ctx = self.evaluator.generation_context_precomputed(
            generation,
            strategies,
            &soa.group_rep,
            soa.fingerprints.clone(),
            soa.deterministic.clone(),
        );

        // Evaluate the distinct-pair payoff matrix in parallel. The initial
        // per-worker segments are seeded from the cost-proportional
        // partition (cached pairs priced as probes, stochastic pairs as full
        // games), so both the static and the adaptive policy start balanced
        // and stealing only corrects prediction error. With repricing
        // enabled, measured means from earlier generations replace the
        // analytic prices of observed stochastic cells.
        let weights = {
            let mut repricing = self.repricing.lock();
            match repricing.as_mut() {
                Some(ewma) => {
                    for ((a, b), mean) in self.measured.lock().mean_iter() {
                        ewma.observe(a, b, mean);
                    }
                    egd_cost::predict::cell_weights_refined(
                        &self.cost_model,
                        self.evaluator.game(),
                        strategies,
                        &soa.group_rep,
                        &ctx.fingerprints,
                        ewma,
                    )
                }
                None => egd_cost::predict::cell_weights(
                    &self.cost_model,
                    self.evaluator.game(),
                    strategies,
                    &soa.group_rep,
                ),
            }
        };
        let evaluator = &self.evaluator;
        let ctx_ref = &ctx;
        let group_rep_ref = &soa.group_rep;
        let measured = &self.measured;
        let pay: Vec<f64> = self.install(|| {
            egd_obs::obs_span!(SpanKind::CellMatrix, (num_groups * num_groups) as u64, {
                egd_sched::map_indexed_weighted(self.threads.effective_threads(), &weights, |idx| {
                    let g = idx / num_groups;
                    let h = idx % num_groups;
                    let span = SpanTimer::start(SpanKind::Cell);
                    let cell = evaluator
                        .cell_payoff(ctx_ref, strategies, group_rep_ref, g, h, generation)
                        .map(|(to_g, _)| to_g);
                    if let Some(span) = span {
                        let elapsed = egd_obs::now_ns().saturating_sub(span.start_ns());
                        measured.lock().record(
                            ctx_ref.fingerprints[g],
                            ctx_ref.fingerprints[h],
                            elapsed,
                        );
                        span.finish(idx as u64);
                    }
                    cell
                })
                .into_iter()
                .collect::<EgdResult<Vec<f64>>>()
            })
        })?;

        let include_self = matches!(
            population.opponent_policy(),
            OpponentPolicy::AllIncludingSelf
        );
        // One O(G²) sweep into per-group fitness lanes, scattered to SSets
        // in O(N) — bit-identical f64 additions to the historical per-SSet
        // loop, each group's sum computed once instead of once per member.
        let lanes = soa.group_fitness(&pay, include_self);
        Ok(soa.scatter(&lanes))
    }

    /// Computes the fitness via the explicit agent-level work plan: every
    /// agent's chunk of games is an independent task, partial sums are
    /// reduced in worker order. Matches [`ParallelEngine::compute_fitness`]
    /// for deterministic and expected-value games.
    pub fn compute_fitness_via_plan(
        &self,
        population: &Population,
        plan: &WorkPlan,
        generation: u64,
    ) -> EgdResult<Vec<f64>> {
        self.reset_sched_stats();
        let n = population.num_ssets();
        let strategies = population.strategies();
        let evaluator = &self.evaluator;

        // Per-worker reusable buffers: one stochastic scratch plus the
        // block's bookkeeping vectors, so the hot per-item closure performs
        // no allocations after warm-up.
        thread_local! {
            static PLAN_SCRATCH: std::cell::RefCell<PlanScratch> =
                std::cell::RefCell::new(PlanScratch::default());
        }

        let simulated = self.evaluator.mode() == FitnessMode::Simulated;
        // Seed the initial per-worker segments from the plan's predicted
        // item costs — same two-level contract as the grouped path.
        let weights = plan.predicted_weights(population, self.evaluator.game(), &self.cost_model);
        let items = plan.items();
        let partials: Vec<Vec<f64>> = self.install(|| {
            let section = SpanTimer::start(SpanKind::CellMatrix);
            let out = egd_sched::map_indexed_weighted(
                self.threads.effective_threads(),
                &weights,
                |idx| {
                    let item = &items[idx];
                    {
                        PLAN_SCRATCH.with(|cell| {
                            let scratch = &mut *cell.borrow_mut();
                            let mut partial = vec![0.0; n];
                            let me = &strategies[item.sset];
                            let opponents = population.opponents_of(item.sset);
                            let block = &opponents[item.opponent_range.clone()];
                            // Cacheable pairings go through the payoff cache; the
                            // stochastic remainder of the block is batch-played
                            // on the compiled kernel with amortised substream
                            // setup. `to_me[k]` keeps the per-opponent payoffs so
                            // the final accumulation runs in opponent order — the
                            // same f64 summation order as a per-pair loop.
                            scratch.stochastic.clear();
                            scratch.to_me.clear();
                            scratch.to_me.resize(block.len(), 0.0);
                            for (k, &opp) in block.iter().enumerate() {
                                let b = &strategies[opp];
                                if simulated && !evaluator.game().is_deterministic_for(me, b) {
                                    scratch.stochastic.push((k, opp));
                                } else {
                                    let (to_me, _) =
                                        evaluator.pair_payoff(item.sset, me, opp, b, generation)?;
                                    scratch.to_me[k] = to_me;
                                }
                            }
                            if !scratch.stochastic.is_empty() {
                                scratch.opp_indices.clear();
                                scratch
                                    .opp_indices
                                    .extend(scratch.stochastic.iter().map(|&(_, opp)| opp));
                                StochasticBlock::new(evaluator).play_indexed(
                                    item.sset,
                                    me,
                                    &scratch.opp_indices,
                                    strategies,
                                    generation,
                                    &mut scratch.games,
                                )?;
                                for (slot, &(k, _)) in scratch.stochastic.iter().enumerate() {
                                    scratch.to_me[k] = scratch.games.fitness_a[slot];
                                }
                            }
                            partial[item.sset] = scratch.to_me.iter().sum::<f64>();
                            Ok(partial)
                        })
                    }
                },
            );
            if let Some(section) = section {
                section.finish(items.len() as u64);
            }
            out.into_iter().collect::<EgdResult<Vec<Vec<f64>>>>()
        })?;
        Ok(reduce_partials(&partials, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egd_core::simulation::{compute_generation_fitness, PairEvaluator};
    use egd_core::state::MemoryDepth;

    fn config(noise: f64, seed: u64) -> SimulationConfig {
        SimulationConfig::builder()
            .memory(MemoryDepth::ONE)
            .num_ssets(24)
            .agents_per_sset(3)
            .rounds_per_game(40)
            .noise(noise)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn parallel_matches_sequential_reference() {
        for noise in [0.0, 0.02] {
            let cfg = config(noise, 3);
            let population = cfg.initial_population().unwrap();
            let engine =
                ParallelEngine::new(&cfg, FitnessMode::Simulated, ThreadConfig::with_threads(4))
                    .unwrap();
            let mut sequential = PairEvaluator::new(&cfg, FitnessMode::Simulated).unwrap();
            for generation in 0..3 {
                let par = engine.compute_fitness(&population, generation).unwrap();
                let seq =
                    compute_generation_fitness(&population, &mut sequential, generation).unwrap();
                assert_eq!(par, seq, "noise {noise} generation {generation}");
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let cfg = config(0.05, 9);
        let population = cfg.initial_population().unwrap();
        let single =
            ParallelEngine::new(&cfg, FitnessMode::Simulated, ThreadConfig::sequential()).unwrap();
        let many = ParallelEngine::new(&cfg, FitnessMode::Simulated, ThreadConfig::with_threads(8))
            .unwrap();
        for generation in 0..3 {
            assert_eq!(
                single.compute_fitness(&population, generation).unwrap(),
                many.compute_fitness(&population, generation).unwrap()
            );
        }
    }

    #[test]
    fn plan_path_matches_grouped_path_for_deterministic_games() {
        let cfg = config(0.0, 11);
        let population = cfg.initial_population().unwrap();
        let engine =
            ParallelEngine::new(&cfg, FitnessMode::Simulated, ThreadConfig::with_threads(4))
                .unwrap();
        let plan = WorkPlan::for_population(&population);
        let grouped = engine.compute_fitness(&population, 0).unwrap();
        let planned = engine
            .compute_fitness_via_plan(&population, &plan, 0)
            .unwrap();
        for (g, p) in grouped.iter().zip(&planned) {
            assert!((g - p).abs() < 1e-9, "grouped {g} vs planned {p}");
        }
    }

    #[test]
    fn expected_value_mode_agrees_across_paths_under_noise() {
        let cfg = config(0.05, 13);
        let population = cfg.initial_population().unwrap();
        let engine = ParallelEngine::new(
            &cfg,
            FitnessMode::ExpectedValue,
            ThreadConfig::with_threads(2),
        )
        .unwrap();
        let plan = WorkPlan::for_population(&population);
        let grouped = engine.compute_fitness(&population, 0).unwrap();
        let planned = engine
            .compute_fitness_via_plan(&population, &plan, 0)
            .unwrap();
        for (g, p) in grouped.iter().zip(&planned) {
            assert!((g - p).abs() < 1e-6);
        }
    }

    #[test]
    fn timing_merge_and_total() {
        let mut a = GenerationTiming {
            game_play: Duration::from_millis(10),
            dynamics: Duration::from_millis(2),
        };
        let b = GenerationTiming {
            game_play: Duration::from_millis(5),
            dynamics: Duration::from_millis(1),
        };
        a.merge(&b);
        assert_eq!(a.game_play, Duration::from_millis(15));
        assert_eq!(a.dynamics, Duration::from_millis(3));
        assert_eq!(a.total(), Duration::from_millis(18));
    }

    #[test]
    fn engine_banks_scheduler_stats_and_policies_agree() {
        use crate::thread_pool::SchedPolicy;
        let cfg = config(0.05, 19);
        let population = cfg.initial_population().unwrap();
        let adaptive =
            ParallelEngine::new(&cfg, FitnessMode::Simulated, ThreadConfig::with_threads(4))
                .unwrap();
        let fixed = ParallelEngine::new(
            &cfg,
            FitnessMode::Simulated,
            ThreadConfig::with_threads(4).with_policy(SchedPolicy::Static),
        )
        .unwrap();
        assert!(adaptive.last_sched_stats().is_none());
        let a = adaptive.compute_fitness(&population, 0).unwrap();
        let b = fixed.compute_fitness(&population, 0).unwrap();
        assert_eq!(a, b, "static and adaptive schedules must agree");
        let stats = adaptive.last_sched_stats().expect("stats banked");
        assert!(stats.items > 0);
        assert_eq!(fixed.last_sched_stats().unwrap().steals, 0);
        assert_eq!(
            fixed.last_sched_stats().unwrap().policy,
            SchedPolicy::Static
        );
    }

    #[test]
    fn tracing_records_cell_spans_and_measured_costs() {
        use crate::grouping::StrategyGrouping;
        let _guard = egd_obs::session_guard();
        let cfg = config(0.0, 21);
        let population = cfg.initial_population().unwrap();
        let engine =
            ParallelEngine::new(&cfg, FitnessMode::Simulated, ThreadConfig::with_threads(2))
                .unwrap();
        assert!(engine.measured_costs().is_empty(), "nothing before tracing");
        egd_obs::enable_tracing();
        engine.compute_fitness(&population, 0).unwrap();
        egd_obs::disable_tracing();
        let log = egd_obs::collect();

        let num_groups = StrategyGrouping::of(population.strategies())
            .group_rep
            .len();
        let cells = log
            .events
            .iter()
            .filter(|e| e.kind == egd_obs::SpanKind::Cell)
            .count();
        assert_eq!(cells, num_groups * num_groups, "one span per matrix cell");
        assert!(log
            .events
            .iter()
            .any(|e| e.kind == egd_obs::SpanKind::CellMatrix));

        // Every cell's wall time landed in the fingerprint-keyed cost table.
        let costs = engine.measured_costs();
        assert_eq!(costs.total_samples(), (num_groups * num_groups) as u64);
        let fps: Vec<u64> = StrategyGrouping::of(population.strategies())
            .group_rep
            .iter()
            .map(|&i| population.strategies()[i].fingerprint())
            .collect();
        assert!(costs.mean_ns(fps[0], fps[0]).is_some());
        assert!(engine.take_measured_costs().total_samples() > 0);
        assert!(engine.measured_costs().is_empty(), "take clears the table");
    }

    #[test]
    fn measured_repricing_keeps_results_and_seeds_weights() {
        let _guard = egd_obs::session_guard();
        let cfg = config(0.05, 27); // noise: every cell is stochastic
        let population = cfg.initial_population().unwrap();
        let plain =
            ParallelEngine::new(&cfg, FitnessMode::Simulated, ThreadConfig::with_threads(4))
                .unwrap();
        let repriced =
            ParallelEngine::new(&cfg, FitnessMode::Simulated, ThreadConfig::with_threads(4))
                .unwrap();
        repriced.enable_measured_repricing(0.3);
        assert_eq!(repriced.repriced_cells(), 0, "no measurements yet");
        egd_obs::enable_tracing();
        for generation in 0..3 {
            let a = plain.compute_fitness(&population, generation).unwrap();
            let b = repriced.compute_fitness(&population, generation).unwrap();
            assert_eq!(a, b, "repricing must not change fitness");
        }
        egd_obs::disable_tracing();
        // Generations 1+ fed generation-0 measurements into the EWMA.
        assert!(
            repriced.repriced_cells() > 0,
            "EWMA seeded from measurements"
        );
        assert!(!repriced.measured_costs().is_empty());
        repriced.disable_measured_repricing();
        assert_eq!(repriced.repriced_cells(), 0);
    }

    #[test]
    fn metrics_snapshot_carries_workers_and_counters() {
        let cfg = config(0.0, 23);
        let population = cfg.initial_population().unwrap();
        let engine =
            ParallelEngine::new(&cfg, FitnessMode::Simulated, ThreadConfig::with_threads(2))
                .unwrap();
        engine.compute_fitness(&population, 0).unwrap();
        engine.compute_fitness(&population, 1).unwrap();
        let snap = engine.metrics("parallel");
        assert_eq!(snap.run.label, "parallel");
        assert_eq!(snap.run.workers, 2);
        assert!(!snap.workers.is_empty(), "worker table populated");
        assert!(snap.total_items() > 0);
        assert!(snap.counter("pair_cache_hits") > 0);
        assert_eq!(
            snap.counter("pair_cache_hits"),
            engine.evaluator().cache_hits()
        );
        assert!(snap.counter("pair_cache_entries") > 0);
    }

    #[test]
    fn engine_exposes_cache_stats() {
        let cfg = config(0.0, 17);
        let population = cfg.initial_population().unwrap();
        let engine =
            ParallelEngine::new(&cfg, FitnessMode::Simulated, ThreadConfig::with_threads(2))
                .unwrap();
        engine.compute_fitness(&population, 0).unwrap();
        engine.compute_fitness(&population, 1).unwrap();
        assert!(engine.evaluator().cache_hits() > 0);
        assert_eq!(engine.thread_config().effective_threads(), 2);
    }
}
