//! Fitness reduction across threads.
//!
//! The paper's OpenMP level accumulates the per-agent game fitness into the
//! SSet's relative-fitness slot with `#pragma omp atomic` (§V-A). This module
//! provides the equivalent building blocks in safe Rust:
//!
//! * [`AtomicFitness`] — a lock-free `f64` accumulator built on
//!   compare-and-swap over the bit pattern (the direct analogue of the atomic
//!   pragma), and
//! * [`FitnessAccumulator`] — a table of accumulators, one per SSet, that the
//!   engine reduces work items into.
//!
//! The default engine avoids contention entirely by computing disjoint
//! partial sums and adding them in a fixed order (which is also what keeps
//! results bit-identical across thread counts); the atomic path is retained
//! both as the paper-faithful variant and for ablation benchmarks.

use std::sync::atomic::{AtomicU64, Ordering};

/// A lock-free floating-point accumulator (the `omp atomic` equivalent).
#[derive(Debug, Default)]
pub struct AtomicFitness {
    bits: AtomicU64,
}

impl AtomicFitness {
    /// Creates an accumulator initialised to zero.
    pub fn new() -> Self {
        AtomicFitness {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Atomically adds `value`.
    pub fn add(&self, value: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Reads the current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }

    /// Resets the accumulator to zero.
    pub fn reset(&self) {
        self.bits.store(0f64.to_bits(), Ordering::Release);
    }
}

/// A table of per-SSet fitness accumulators.
#[derive(Debug)]
pub struct FitnessAccumulator {
    slots: Vec<AtomicFitness>,
}

impl FitnessAccumulator {
    /// Creates an accumulator table with one zeroed slot per SSet.
    pub fn new(num_ssets: usize) -> Self {
        FitnessAccumulator {
            slots: (0..num_ssets).map(|_| AtomicFitness::new()).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Adds `value` to the slot of `sset`.
    pub fn add(&self, sset: usize, value: f64) {
        self.slots[sset].add(value);
    }

    /// Snapshots the table into a plain vector.
    pub fn snapshot(&self) -> Vec<f64> {
        self.slots.iter().map(|s| s.get()).collect()
    }

    /// Resets every slot to zero.
    pub fn reset(&self) {
        for slot in &self.slots {
            slot.reset();
        }
    }
}

/// Sums per-worker partial fitness tables in worker order. This is the
/// deterministic (order-fixed) reduction the default engine uses.
pub fn reduce_partials(partials: &[Vec<f64>], num_ssets: usize) -> Vec<f64> {
    let mut total = vec![0.0; num_ssets];
    for partial in partials {
        debug_assert_eq!(partial.len(), num_ssets);
        for (t, p) in total.iter_mut().zip(partial) {
            *t += p;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn atomic_fitness_accumulates() {
        let acc = AtomicFitness::new();
        acc.add(1.5);
        acc.add(2.5);
        assert_eq!(acc.get(), 4.0);
        acc.reset();
        assert_eq!(acc.get(), 0.0);
    }

    #[test]
    fn atomic_fitness_is_correct_under_contention() {
        let acc = AtomicFitness::new();
        (0..10_000u32).into_par_iter().for_each(|_| acc.add(1.0));
        assert_eq!(acc.get(), 10_000.0);
    }

    #[test]
    fn accumulator_table() {
        let table = FitnessAccumulator::new(4);
        assert_eq!(table.len(), 4);
        assert!(!table.is_empty());
        table.add(0, 1.0);
        table.add(3, 2.0);
        table.add(0, 0.5);
        assert_eq!(table.snapshot(), vec![1.5, 0.0, 0.0, 2.0]);
        table.reset();
        assert_eq!(table.snapshot(), vec![0.0; 4]);
    }

    #[test]
    fn accumulator_parallel_consistency() {
        let table = FitnessAccumulator::new(8);
        (0..8usize).into_par_iter().for_each(|sset| {
            for _ in 0..1000 {
                table.add(sset, sset as f64);
            }
        });
        let snapshot = table.snapshot();
        for (sset, value) in snapshot.iter().enumerate() {
            assert_eq!(*value, sset as f64 * 1000.0);
        }
    }

    #[test]
    fn reduce_partials_sums_in_order() {
        let partials = vec![vec![1.0, 2.0, 3.0], vec![0.5, 0.5, 0.5]];
        assert_eq!(reduce_partials(&partials, 3), vec![1.5, 2.5, 3.5]);
        assert_eq!(reduce_partials(&[], 2), vec![0.0, 0.0]);
    }
}
