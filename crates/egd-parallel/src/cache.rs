//! Thread-safe pairwise-fitness evaluation with a sharded cache.
//!
//! For deterministic games (pure strategies, no noise — the paper's
//! production setting) the payoff of a strategy pair never changes, so the
//! engine memoises it. Under rayon the cache is hit concurrently from many
//! worker threads, so it is sharded across `parking_lot::RwLock`-protected
//! maps keyed by the pair fingerprint.

use egd_core::config::SimulationConfig;
use egd_core::error::EgdResult;
use egd_core::game::{IpdGame, MarkovGame};
use egd_core::rng::{substream, StreamKind};
use egd_core::simulation::FitnessMode;
use egd_core::strategy::StrategyKind;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

const NUM_SHARDS: usize = 64;

/// One cache shard: `(fingerprint_a, fingerprint_b)` → `(payoff_a, payoff_b)`.
type PayoffShard = RwLock<HashMap<(u64, u64), (f64, f64)>>;

/// A concurrent pairwise-payoff evaluator, semantically identical to
/// [`egd_core::simulation::PairEvaluator`] but callable from many threads at
/// once through `&self`.
#[derive(Debug)]
pub struct ConcurrentPairEvaluator {
    game: IpdGame,
    markov: MarkovGame,
    mode: FitnessMode,
    seed: u64,
    shards: Vec<PayoffShard>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ConcurrentPairEvaluator {
    /// Creates an evaluator for a configuration.
    pub fn new(config: &SimulationConfig, mode: FitnessMode) -> EgdResult<Self> {
        Ok(ConcurrentPairEvaluator {
            game: config.game()?,
            markov: config.markov_game()?,
            mode,
            seed: config.seed,
            shards: (0..NUM_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The fitness mode in use.
    pub fn mode(&self) -> FitnessMode {
        self.mode
    }

    /// Number of cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses so far.
    pub fn cache_misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total number of cached pairs.
    pub fn cached_pairs(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    fn shard_for(&self, key: (u64, u64)) -> &PayoffShard {
        let mixed = key.0 ^ key.1.rotate_left(17);
        &self.shards[(mixed as usize) % NUM_SHARDS]
    }

    /// Payoffs `(to_a, to_b)` of one game between two strategies in a given
    /// generation. Exactly mirrors
    /// [`egd_core::simulation::PairEvaluator::pair_payoff`] so that parallel
    /// and sequential runs stay bit-identical.
    pub fn pair_payoff(
        &self,
        a_index: usize,
        a: &StrategyKind,
        b_index: usize,
        b: &StrategyKind,
        generation: u64,
    ) -> EgdResult<(f64, f64)> {
        let cacheable = match self.mode {
            FitnessMode::Simulated => self.game.is_deterministic_for(a, b),
            FitnessMode::ExpectedValue => true,
        };
        let key = (a.fingerprint(), b.fingerprint());
        if cacheable {
            if let Some(&hit) = self.shard_for(key).read().get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(hit);
            }
        }
        let result = match self.mode {
            FitnessMode::ExpectedValue => {
                let e = self.markov.finite_horizon(a, b)?;
                (e.payoff_a, e.payoff_b)
            }
            FitnessMode::Simulated => {
                if self.game.is_deterministic_for(a, b) {
                    let (pa, pb) = match (a, b) {
                        (StrategyKind::Pure(pa), StrategyKind::Pure(pb)) => (pa, pb),
                        _ => unreachable!("deterministic pairs are pure"),
                    };
                    let outcome = self.game.play_pure(pa, pb)?;
                    (outcome.fitness_a, outcome.fitness_b)
                } else {
                    let pair_id = (a_index as u64) << 32 | b_index as u64;
                    let mut rng = substream(self.seed, StreamKind::GamePlay, pair_id, generation);
                    let outcome = self.game.play(a, b, &mut rng)?;
                    (outcome.fitness_a, outcome.fitness_b)
                }
            }
        };
        if cacheable {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.shard_for(key).write().insert(key, result);
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egd_core::simulation::PairEvaluator;
    use egd_core::state::MemoryDepth;

    fn config(noise: f64) -> SimulationConfig {
        SimulationConfig::builder()
            .memory(MemoryDepth::ONE)
            .num_ssets(8)
            .rounds_per_game(30)
            .noise(noise)
            .seed(5)
            .build()
            .unwrap()
    }

    #[test]
    fn matches_sequential_evaluator_deterministic() {
        let cfg = config(0.0);
        let population = cfg.initial_population().unwrap();
        let concurrent = ConcurrentPairEvaluator::new(&cfg, FitnessMode::Simulated).unwrap();
        let mut sequential = PairEvaluator::new(&cfg, FitnessMode::Simulated).unwrap();
        let strategies = population.strategies();
        for i in 0..strategies.len() {
            for j in 0..strategies.len() {
                let a = concurrent
                    .pair_payoff(i, &strategies[i], j, &strategies[j], 0)
                    .unwrap();
                let b = sequential
                    .pair_payoff(i, &strategies[i], j, &strategies[j], 0)
                    .unwrap();
                assert_eq!(a, b);
            }
        }
        assert!(concurrent.cache_hits() + concurrent.cache_misses() > 0);
        assert!(concurrent.cached_pairs() > 0);
    }

    #[test]
    fn matches_sequential_evaluator_noisy() {
        // With noise the payoff is drawn from a per-(pair, generation) stream,
        // so concurrent and sequential evaluators must still agree exactly.
        let cfg = config(0.05);
        let population = cfg.initial_population().unwrap();
        let concurrent = ConcurrentPairEvaluator::new(&cfg, FitnessMode::Simulated).unwrap();
        let mut sequential = PairEvaluator::new(&cfg, FitnessMode::Simulated).unwrap();
        let strategies = population.strategies();
        for generation in 0..3u64 {
            for i in 0..strategies.len() {
                for j in 0..strategies.len() {
                    let a = concurrent
                        .pair_payoff(i, &strategies[i], j, &strategies[j], generation)
                        .unwrap();
                    let b = sequential
                        .pair_payoff(i, &strategies[i], j, &strategies[j], generation)
                        .unwrap();
                    assert_eq!(a, b);
                }
            }
        }
    }

    #[test]
    fn concurrent_access_is_consistent() {
        use rayon::prelude::*;
        let cfg = config(0.0);
        let population = cfg.initial_population().unwrap();
        let evaluator = ConcurrentPairEvaluator::new(&cfg, FitnessMode::Simulated).unwrap();
        let strategies = population.strategies();
        let pairs: Vec<(usize, usize)> = (0..8).flat_map(|i| (0..8).map(move |j| (i, j))).collect();
        let results: Vec<(f64, f64)> = pairs
            .par_iter()
            .map(|&(i, j)| {
                evaluator
                    .pair_payoff(i, &strategies[i], j, &strategies[j], 0)
                    .unwrap()
            })
            .collect();
        // Re-evaluate sequentially and compare.
        for (k, &(i, j)) in pairs.iter().enumerate() {
            let expected = evaluator
                .pair_payoff(i, &strategies[i], j, &strategies[j], 0)
                .unwrap();
            assert_eq!(results[k], expected);
        }
    }

    #[test]
    fn expected_value_mode_caches_noisy_pairs() {
        let cfg = config(0.05);
        let population = cfg.initial_population().unwrap();
        let evaluator = ConcurrentPairEvaluator::new(&cfg, FitnessMode::ExpectedValue).unwrap();
        let strategies = population.strategies();
        let first = evaluator
            .pair_payoff(0, &strategies[0], 1, &strategies[1], 0)
            .unwrap();
        let second = evaluator
            .pair_payoff(0, &strategies[0], 1, &strategies[1], 5)
            .unwrap();
        // Expected-value payoffs are generation-independent and cached.
        assert_eq!(first, second);
        assert_eq!(evaluator.cache_hits(), 1);
        assert_eq!(evaluator.mode(), FitnessMode::ExpectedValue);
    }
}
