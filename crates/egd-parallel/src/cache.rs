//! Thread-safe pairwise-fitness evaluation with a contention-free cache.
//!
//! For deterministic games (pure strategies, no noise — the paper's
//! production setting) the payoff of a strategy pair never changes, so the
//! engine memoises it. Under the work-stealing scheduler the cache is hit
//! concurrently from many worker threads; the previous design (64
//! `RwLock<HashMap>` shards) still serialised hits through shard read locks
//! and paid SipHash on keys that are already 64-bit fingerprint hashes.
//!
//! [`PayoffSlab`] replaces it: an **append-only, read-mostly** open-addressed
//! table of atomic slots. A hit is a handful of atomic loads — no locks, no
//! CAS, no re-hashing (slots are addressed by mixing the fingerprints
//! directly). Writes CAS an empty slot through a short `WRITING` window and
//! publish with a release store; because deterministic payoffs are a pure
//! function of the key, racing writers of the same key are benign (both
//! write identical values). When the fixed-capacity slab fills up, inserts
//! spill to a small lock-guarded overflow map, preserving unbounded capacity
//! without complicating the lock-free fast path.
//!
//! Stochastic pairs are never cached; they now run on the compiled kernel
//! ([`IpdGame::play_compiled`]) with per-generation interning of compiled
//! strategies ([`crate::intern::CompiledInterner`]).

use crate::intern::CompiledInterner;
use egd_core::config::SimulationConfig;
use egd_core::error::EgdResult;
use egd_core::game::{CompiledPair, CompiledStrategy, IpdGame, MarkovGame};
use egd_core::rng::{substream, StreamKind};
use egd_core::simulation::FitnessMode;
use egd_core::strategy::{Strategy, StrategyKind};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Slot is unclaimed.
const SLOT_EMPTY: u64 = 0;
/// A writer has claimed the slot and is filling it in.
const SLOT_WRITING: u64 = 1;
/// The slot's key and payoffs are published.
const SLOT_FULL: u64 = 2;

/// log2 of the lock-free slab capacity (8192 pairs ≈ 320 KiB of slots —
/// far beyond the distinct-pair count of any population this workspace
/// runs; overflow degrades gracefully to a locked map).
const SLAB_BITS: u32 = 13;
/// Linear-probe bound before an operation falls through to the overflow map.
const MAX_PROBE: usize = 32;
/// Occupancy (in slots) beyond which inserts spill to the overflow map.
const SPILL_AT: usize = (1usize << SLAB_BITS) / 4 * 3;

#[derive(Debug, Default)]
struct Slot {
    state: AtomicU64,
    key_a: AtomicU64,
    key_b: AtomicU64,
    pay_a: AtomicU64,
    pay_b: AtomicU64,
}

/// Append-only concurrent payoff table: `(fingerprint_a, fingerprint_b)` →
/// `(payoff_a, payoff_b)`. Lock-free on the hit path.
#[derive(Debug)]
struct PayoffSlab {
    slots: Box<[Slot]>,
    filled: AtomicUsize,
    overflow: RwLock<HashMap<(u64, u64), (f64, f64)>>,
    overflow_len: AtomicUsize,
}

impl PayoffSlab {
    fn new() -> Self {
        PayoffSlab {
            slots: (0..1usize << SLAB_BITS)
                .map(|_| Slot::default())
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            filled: AtomicUsize::new(0),
            overflow: RwLock::new(HashMap::new()),
            overflow_len: AtomicUsize::new(0),
        }
    }

    /// Mixes the two fingerprints into a probe start. The fingerprints are
    /// already FNV-mixed, so a cheap combine suffices — no SipHash pass.
    #[inline]
    fn probe_start(key: (u64, u64)) -> usize {
        let mixed = key.0 ^ key.1.rotate_left(29).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (mixed as usize) & ((1usize << SLAB_BITS) - 1)
    }

    /// Waits out a concurrent writer's brief `WRITING` window. Bounded
    /// spinning, then yields (the host may have a single core).
    #[inline]
    fn wait_published(slot: &Slot) -> u64 {
        let mut spins = 0u32;
        loop {
            let state = slot.state.load(Ordering::Acquire);
            if state != SLOT_WRITING {
                return state;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Looks up a pair. Lock-free unless the entry spilled to overflow.
    fn get(&self, key: (u64, u64)) -> Option<(f64, f64)> {
        let mask = (1usize << SLAB_BITS) - 1;
        let mut idx = Self::probe_start(key);
        for _ in 0..MAX_PROBE {
            let slot = &self.slots[idx];
            let state = match slot.state.load(Ordering::Acquire) {
                SLOT_WRITING => Self::wait_published(slot),
                s => s,
            };
            if state == SLOT_EMPTY {
                return self.get_overflow(key);
            }
            if slot.key_a.load(Ordering::Relaxed) == key.0
                && slot.key_b.load(Ordering::Relaxed) == key.1
            {
                return Some((
                    f64::from_bits(slot.pay_a.load(Ordering::Relaxed)),
                    f64::from_bits(slot.pay_b.load(Ordering::Relaxed)),
                ));
            }
            idx = (idx + 1) & mask;
        }
        self.get_overflow(key)
    }

    fn get_overflow(&self, key: (u64, u64)) -> Option<(f64, f64)> {
        if self.overflow_len.load(Ordering::Relaxed) == 0 {
            return None;
        }
        self.overflow.read().get(&key).copied()
    }

    /// Inserts a pair. Values are a pure function of the key, so racing
    /// inserts of the same key are benign.
    fn insert(&self, key: (u64, u64), value: (f64, f64)) {
        if self.filled.load(Ordering::Relaxed) < SPILL_AT {
            let mask = (1usize << SLAB_BITS) - 1;
            let mut idx = Self::probe_start(key);
            for _ in 0..MAX_PROBE {
                let slot = &self.slots[idx];
                match slot.state.compare_exchange(
                    SLOT_EMPTY,
                    SLOT_WRITING,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        slot.key_a.store(key.0, Ordering::Relaxed);
                        slot.key_b.store(key.1, Ordering::Relaxed);
                        slot.pay_a.store(value.0.to_bits(), Ordering::Relaxed);
                        slot.pay_b.store(value.1.to_bits(), Ordering::Relaxed);
                        slot.state.store(SLOT_FULL, Ordering::Release);
                        self.filled.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    Err(SLOT_WRITING) => {
                        Self::wait_published(slot);
                    }
                    Err(_) => {}
                }
                // Slot is FULL (either it already was, or the writer we
                // waited for published): if it holds our key we are done.
                if slot.key_a.load(Ordering::Relaxed) == key.0
                    && slot.key_b.load(Ordering::Relaxed) == key.1
                {
                    return;
                }
                idx = (idx + 1) & mask;
            }
        }
        let mut overflow = self.overflow.write();
        overflow.insert(key, value);
        self.overflow_len.store(overflow.len(), Ordering::Relaxed);
    }

    /// Total number of cached pairs (slab + overflow).
    fn len(&self) -> usize {
        self.filled.load(Ordering::Relaxed) + self.overflow_len.load(Ordering::Relaxed)
    }
}

/// Precomputed per-generation evaluation state for a grouped population:
/// one fingerprint, determinism flag and (when stochastic play is possible)
/// compiled strategy per distinct-strategy group. Built once per generation
/// by [`ConcurrentPairEvaluator::generation_context`] and shared read-only
/// by every pair-matrix cell.
#[derive(Debug)]
pub struct GenerationContext {
    /// Fingerprint of each group representative's strategy.
    pub fingerprints: Vec<u64>,
    /// Whether each group's strategy is deterministic.
    pub deterministic: Vec<bool>,
    /// Compiled strategies, populated when any stochastic game can occur.
    compiled: Vec<Option<Arc<CompiledStrategy>>>,
}

/// A concurrent pairwise-payoff evaluator, semantically identical to
/// [`egd_core::simulation::PairEvaluator`] but callable from many threads at
/// once through `&self`.
#[derive(Debug)]
pub struct ConcurrentPairEvaluator {
    game: IpdGame,
    markov: MarkovGame,
    mode: FitnessMode,
    seed: u64,
    cache: PayoffSlab,
    interner: CompiledInterner,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ConcurrentPairEvaluator {
    /// Creates an evaluator for a configuration.
    pub fn new(config: &SimulationConfig, mode: FitnessMode) -> EgdResult<Self> {
        Ok(ConcurrentPairEvaluator {
            game: config.game()?,
            markov: config.markov_game()?,
            mode,
            seed: config.seed,
            cache: PayoffSlab::new(),
            interner: CompiledInterner::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The fitness mode in use.
    pub fn mode(&self) -> FitnessMode {
        self.mode
    }

    /// The game the evaluator plays.
    pub fn game(&self) -> &IpdGame {
        &self.game
    }

    /// The global seed payoff streams derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of cache misses so far.
    pub fn cache_misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total number of cached pairs.
    pub fn cached_pairs(&self) -> usize {
        self.cache.len()
    }

    /// Strategies interned for the active generation.
    pub fn interned_strategies(&self) -> usize {
        self.interner.len()
    }

    /// Strategy compilations performed so far (each one is a `Compile` span
    /// while tracing is enabled).
    pub fn strategy_compiles(&self) -> u64 {
        self.interner.compiles()
    }

    /// The compiled form of `strategy` for `generation` (interned: one
    /// compile per distinct strategy per generation).
    pub fn compiled_for(&self, generation: u64, strategy: &StrategyKind) -> Arc<CompiledStrategy> {
        self.interner.compiled_for(generation, strategy)
    }

    /// The interned dense pair table for `(a, b)` in `generation` — the unit
    /// the batched stochastic kernel copies lanes from (see
    /// [`CompiledInterner::pair_table_for`]).
    pub fn pair_table_for(
        &self,
        generation: u64,
        a: &StrategyKind,
        b: &StrategyKind,
    ) -> Arc<egd_core::game::CompiledPairTable> {
        self.interner.pair_table_for(generation, a, b)
    }

    /// Pre-compiles the distinct strategies of a generation (one per group
    /// representative) so the parallel section only takes read locks. Call
    /// before fanning out when stochastic games will be played; harmless
    /// (and skipped) when every pair is deterministic or expected-value.
    pub fn prepare_generation(
        &self,
        generation: u64,
        strategies: &[StrategyKind],
        group_rep: &[usize],
    ) {
        if self.mode != FitnessMode::Simulated {
            return;
        }
        let any_stochastic =
            self.game.noise() > 0.0 || group_rep.iter().any(|&i| !strategies[i].is_deterministic());
        if any_stochastic {
            self.interner.prepare(generation, strategies, group_rep);
        }
    }

    /// Builds the per-generation evaluation context for a grouped
    /// population: group fingerprints, determinism flags and compiled
    /// strategies are computed **once per distinct strategy** instead of
    /// once per pair-matrix cell (a `G×G` matrix recomputes each
    /// fingerprint `2G` times through [`ConcurrentPairEvaluator::pair_payoff`]).
    pub fn generation_context(
        &self,
        generation: u64,
        strategies: &[StrategyKind],
        group_rep: &[usize],
    ) -> GenerationContext {
        let fingerprints: Vec<u64> = group_rep
            .iter()
            .map(|&i| strategies[i].fingerprint())
            .collect();
        let deterministic: Vec<bool> = group_rep
            .iter()
            .map(|&i| strategies[i].is_deterministic())
            .collect();
        self.generation_context_precomputed(
            generation,
            strategies,
            group_rep,
            fingerprints,
            deterministic,
        )
    }

    /// [`ConcurrentPairEvaluator::generation_context`] with the per-group
    /// fingerprint and determinism lanes already computed — the entry point
    /// for callers holding an SoA population view
    /// ([`crate::soa::PopulationSoA`]), which derives both lanes once per
    /// generation anyway.
    pub fn generation_context_precomputed(
        &self,
        generation: u64,
        strategies: &[StrategyKind],
        group_rep: &[usize],
        fingerprints: Vec<u64>,
        deterministic: Vec<bool>,
    ) -> GenerationContext {
        let stochastic_possible = self.mode == FitnessMode::Simulated
            && (self.game.noise() > 0.0 || deterministic.iter().any(|&d| !d));
        let compiled: Vec<Option<Arc<CompiledStrategy>>> = if stochastic_possible {
            self.interner.prepare(generation, strategies, group_rep);
            group_rep
                .iter()
                .map(|&i| Some(self.interner.compiled_for(generation, &strategies[i])))
                .collect()
        } else {
            vec![None; group_rep.len()]
        };
        GenerationContext {
            fingerprints,
            deterministic,
            compiled,
        }
    }

    /// Payoff of the distinct-pair matrix cell `(g, h)` using the
    /// precomputed [`GenerationContext`]. Semantically identical to
    /// [`ConcurrentPairEvaluator::pair_payoff`] on the groups'
    /// representatives — same cache keys, same per-pair random streams,
    /// same kernels — with all per-strategy work hoisted out.
    pub fn cell_payoff(
        &self,
        ctx: &GenerationContext,
        strategies: &[StrategyKind],
        group_rep: &[usize],
        g: usize,
        h: usize,
        generation: u64,
    ) -> EgdResult<(f64, f64)> {
        let (i, j) = (group_rep[g], group_rep[h]);
        let deterministic_pair =
            self.game.noise() == 0.0 && ctx.deterministic[g] && ctx.deterministic[h];
        let compiled = if deterministic_pair {
            None
        } else {
            ctx.compiled[g].as_deref().zip(ctx.compiled[h].as_deref())
        };
        self.evaluate_pair(
            (ctx.fingerprints[g], ctx.fingerprints[h]),
            deterministic_pair,
            i,
            &strategies[i],
            j,
            &strategies[j],
            compiled,
            generation,
        )
    }

    /// Payoffs `(to_a, to_b)` of one game between two strategies in a given
    /// generation. Exactly mirrors
    /// [`egd_core::simulation::PairEvaluator::pair_payoff`] so that parallel
    /// and sequential runs stay bit-identical.
    pub fn pair_payoff(
        &self,
        a_index: usize,
        a: &StrategyKind,
        b_index: usize,
        b: &StrategyKind,
        generation: u64,
    ) -> EgdResult<(f64, f64)> {
        self.evaluate_pair(
            (a.fingerprint(), b.fingerprint()),
            self.game.is_deterministic_for(a, b),
            a_index,
            a,
            b_index,
            b,
            None,
            generation,
        )
    }

    /// The single evaluation routine behind [`ConcurrentPairEvaluator::pair_payoff`]
    /// and [`ConcurrentPairEvaluator::cell_payoff`]: cache lookup, kernel
    /// dispatch and cache insertion. `compiled` supplies pre-resolved
    /// compiled strategies for the stochastic path; when `None`, they are
    /// fetched from the per-generation interner.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_pair(
        &self,
        key: (u64, u64),
        deterministic_pair: bool,
        a_index: usize,
        a: &StrategyKind,
        b_index: usize,
        b: &StrategyKind,
        compiled: Option<(&CompiledStrategy, &CompiledStrategy)>,
        generation: u64,
    ) -> EgdResult<(f64, f64)> {
        let cacheable = match self.mode {
            FitnessMode::Simulated => deterministic_pair,
            FitnessMode::ExpectedValue => true,
        };
        if cacheable {
            if let Some(hit) = self.cache.get(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(hit);
            }
        }
        let result = match self.mode {
            FitnessMode::ExpectedValue => {
                let e = self.markov.finite_horizon(a, b)?;
                (e.payoff_a, e.payoff_b)
            }
            FitnessMode::Simulated => {
                if deterministic_pair {
                    let (pa, pb) = match (a, b) {
                        (StrategyKind::Pure(pa), StrategyKind::Pure(pb)) => (pa, pb),
                        _ => unreachable!("deterministic pairs are pure"),
                    };
                    let outcome = self.game.play_pure(pa, pb)?;
                    (outcome.fitness_a, outcome.fitness_b)
                } else {
                    let interned;
                    let (ca, cb) = match compiled {
                        Some(refs) => refs,
                        None => {
                            interned = (
                                self.interner.compiled_for(generation, a),
                                self.interner.compiled_for(generation, b),
                            );
                            (&*interned.0, &*interned.1)
                        }
                    };
                    let pair_id = (a_index as u64) << 32 | b_index as u64;
                    let mut rng = substream(self.seed, StreamKind::GamePlay, pair_id, generation);
                    let outcome = self.game.play_pair(&CompiledPair::new(ca, cb), &mut rng)?;
                    (outcome.fitness_a, outcome.fitness_b)
                }
            }
        };
        if cacheable {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.cache.insert(key, result);
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egd_core::simulation::PairEvaluator;
    use egd_core::state::MemoryDepth;

    fn config(noise: f64) -> SimulationConfig {
        SimulationConfig::builder()
            .memory(MemoryDepth::ONE)
            .num_ssets(8)
            .rounds_per_game(30)
            .noise(noise)
            .seed(5)
            .build()
            .unwrap()
    }

    #[test]
    fn slab_round_trips_and_counts() {
        let slab = PayoffSlab::new();
        assert_eq!(slab.get((1, 2)), None);
        slab.insert((1, 2), (3.5, -0.25));
        assert_eq!(slab.get((1, 2)), Some((3.5, -0.25)));
        // Idempotent re-insert of the same key does not grow the table.
        slab.insert((1, 2), (3.5, -0.25));
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get((2, 1)), None, "asymmetric keys are distinct");
    }

    #[test]
    fn slab_handles_probe_collisions() {
        let slab = PayoffSlab::new();
        // Many keys sharing low bits force linear probing and overflow.
        let n = MAX_PROBE as u64 * 3;
        for i in 0..n {
            // key.1 = 0 keeps probe_start = key.0's low bits; stride by the
            // slab size so every key lands on the same start slot.
            let key = ((i << SLAB_BITS) + 7, 0);
            slab.insert(key, (i as f64, -(i as f64)));
        }
        for i in 0..n {
            let key = ((i << SLAB_BITS) + 7, 0);
            assert_eq!(slab.get(key), Some((i as f64, -(i as f64))), "key {i}");
        }
        assert_eq!(slab.len(), n as usize);
    }

    #[test]
    fn matches_sequential_evaluator_deterministic() {
        let cfg = config(0.0);
        let population = cfg.initial_population().unwrap();
        let concurrent = ConcurrentPairEvaluator::new(&cfg, FitnessMode::Simulated).unwrap();
        let mut sequential = PairEvaluator::new(&cfg, FitnessMode::Simulated).unwrap();
        let strategies = population.strategies();
        for i in 0..strategies.len() {
            for j in 0..strategies.len() {
                let a = concurrent
                    .pair_payoff(i, &strategies[i], j, &strategies[j], 0)
                    .unwrap();
                let b = sequential
                    .pair_payoff(i, &strategies[i], j, &strategies[j], 0)
                    .unwrap();
                assert_eq!(a, b);
            }
        }
        assert!(concurrent.cache_hits() + concurrent.cache_misses() > 0);
        assert!(concurrent.cached_pairs() > 0);
    }

    #[test]
    fn matches_sequential_evaluator_noisy() {
        // With noise the payoff is drawn from a per-(pair, generation) stream,
        // so concurrent and sequential evaluators must still agree exactly.
        let cfg = config(0.05);
        let population = cfg.initial_population().unwrap();
        let concurrent = ConcurrentPairEvaluator::new(&cfg, FitnessMode::Simulated).unwrap();
        let mut sequential = PairEvaluator::new(&cfg, FitnessMode::Simulated).unwrap();
        let strategies = population.strategies();
        for generation in 0..3u64 {
            for i in 0..strategies.len() {
                for j in 0..strategies.len() {
                    let a = concurrent
                        .pair_payoff(i, &strategies[i], j, &strategies[j], generation)
                        .unwrap();
                    let b = sequential
                        .pair_payoff(i, &strategies[i], j, &strategies[j], generation)
                        .unwrap();
                    assert_eq!(a, b);
                }
            }
        }
    }

    #[test]
    fn concurrent_access_is_consistent() {
        use rayon::prelude::*;
        let cfg = config(0.0);
        let population = cfg.initial_population().unwrap();
        let evaluator = ConcurrentPairEvaluator::new(&cfg, FitnessMode::Simulated).unwrap();
        let strategies = population.strategies();
        let pairs: Vec<(usize, usize)> = (0..8).flat_map(|i| (0..8).map(move |j| (i, j))).collect();
        let results: Vec<(f64, f64)> = pairs
            .par_iter()
            .map(|&(i, j)| {
                evaluator
                    .pair_payoff(i, &strategies[i], j, &strategies[j], 0)
                    .unwrap()
            })
            .collect();
        // Re-evaluate sequentially and compare.
        for (k, &(i, j)) in pairs.iter().enumerate() {
            let expected = evaluator
                .pair_payoff(i, &strategies[i], j, &strategies[j], 0)
                .unwrap();
            assert_eq!(results[k], expected);
        }
    }

    #[test]
    fn expected_value_mode_caches_noisy_pairs() {
        let cfg = config(0.05);
        let population = cfg.initial_population().unwrap();
        let evaluator = ConcurrentPairEvaluator::new(&cfg, FitnessMode::ExpectedValue).unwrap();
        let strategies = population.strategies();
        let first = evaluator
            .pair_payoff(0, &strategies[0], 1, &strategies[1], 0)
            .unwrap();
        let second = evaluator
            .pair_payoff(0, &strategies[0], 1, &strategies[1], 5)
            .unwrap();
        // Expected-value payoffs are generation-independent and cached.
        assert_eq!(first, second);
        assert_eq!(evaluator.cache_hits(), 1);
        assert_eq!(evaluator.mode(), FitnessMode::ExpectedValue);
    }

    #[test]
    fn prepare_generation_prefills_the_interner() {
        use crate::grouping::StrategyGrouping;
        let cfg = config(0.05);
        let population = cfg.initial_population().unwrap();
        let evaluator = ConcurrentPairEvaluator::new(&cfg, FitnessMode::Simulated).unwrap();
        let strategies = population.strategies();
        let grouping = StrategyGrouping::of(strategies);
        evaluator.prepare_generation(0, strategies, &grouping.group_rep);
        // Noisy games make every pair stochastic, so every rep is compiled.
        let compiled = evaluator.compiled_for(0, &strategies[0]);
        let again = evaluator.compiled_for(0, &strategies[0]);
        assert!(Arc::ptr_eq(&compiled, &again));
    }
}
