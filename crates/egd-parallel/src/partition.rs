//! Multi-level work decomposition.
//!
//! The paper's decomposition has two levels (§IV, Fig. 1a):
//!
//! 1. **SSets across processors** — every processor owns a contiguous block
//!    of SSets (possibly a fraction of one at very large scale, which is
//!    exactly when Table VI shows efficiency collapsing).
//! 2. **Opponents across agents / threads** — within an SSet, the opponent
//!    strategies are split across the SSet's agents, whose games run on the
//!    node's threads.
//!
//! [`SSetPartition`] implements level 1 and [`WorkPlan`] expands a
//! generation's games into flat [`WorkItem`]s for level 2.

use egd_core::agent::block_for_slot;
use egd_core::error::{EgdError, EgdResult};
use egd_core::population::Population;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Assignment of SSets to workers (threads here, ranks in `egd-cluster`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SSetPartition {
    num_ssets: usize,
    num_workers: usize,
}

impl SSetPartition {
    /// Creates a partition of `num_ssets` SSets over `num_workers` workers.
    pub fn new(num_ssets: usize, num_workers: usize) -> EgdResult<Self> {
        if num_workers == 0 {
            return Err(EgdError::InvalidTopology {
                reason: "a partition needs at least one worker".to_string(),
            });
        }
        Ok(SSetPartition {
            num_ssets,
            num_workers,
        })
    }

    /// Number of SSets being partitioned.
    pub fn num_ssets(&self) -> usize {
        self.num_ssets
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// The paper's key capacity ratio `R` = SSets per worker. Efficiency
    /// collapses when `R < 1` (Table VI).
    pub fn ssets_per_worker(&self) -> f64 {
        self.num_ssets as f64 / self.num_workers as f64
    }

    /// The contiguous block of SSet indices owned by `worker`.
    pub fn block(&self, worker: usize) -> Range<usize> {
        assert!(worker < self.num_workers, "worker index out of range");
        block_for_slot(worker as u32, self.num_ssets, self.num_workers as u32)
    }

    /// The worker that owns SSet `sset`.
    pub fn owner_of(&self, sset: usize) -> usize {
        assert!(sset < self.num_ssets, "SSet index out of range");
        (0..self.num_workers)
            .find(|&w| self.block(w).contains(&sset))
            .expect("blocks partition all SSets")
    }

    /// Iterates over `(worker, block)` pairs.
    pub fn blocks(&self) -> impl Iterator<Item = (usize, Range<usize>)> + '_ {
        (0..self.num_workers).map(move |w| (w, self.block(w)))
    }

    /// The maximum number of SSets any single worker owns (the load-balance
    /// bound that drives strong-scaling efficiency).
    pub fn max_block_len(&self) -> usize {
        self.blocks().map(|(_, b)| b.len()).max().unwrap_or(0)
    }
}

/// One unit of game work: an SSet plays a contiguous chunk of its opponents.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkItem {
    /// The SSet whose strategy is the focal player.
    pub sset: usize,
    /// The agent slot within the SSet that owns this chunk.
    pub agent_slot: u32,
    /// Indices into the SSet's opponent list covered by this item.
    pub opponent_range: Range<usize>,
}

/// The full game-play plan for one generation: every SSet × opponent pairing
/// appears in exactly one [`WorkItem`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkPlan {
    items: Vec<WorkItem>,
    num_ssets: usize,
    agents_per_sset: u32,
}

impl WorkPlan {
    /// Builds the plan for a population: each SSet's opponent list is split
    /// across its agents following the paper's "each agent is assigned s/a
    /// opposing SSets" rule.
    pub fn for_population(population: &Population) -> Self {
        let num_ssets = population.num_ssets();
        let agents_per_sset = population.agents_per_sset();
        let mut items = Vec::new();
        for sset in 0..num_ssets {
            let num_opponents = population.opponents_of(sset).len();
            for slot in 0..agents_per_sset {
                let range = block_for_slot(slot, num_opponents, agents_per_sset);
                if !range.is_empty() {
                    items.push(WorkItem {
                        sset,
                        agent_slot: slot,
                        opponent_range: range,
                    });
                }
            }
        }
        WorkPlan {
            items,
            num_ssets,
            agents_per_sset,
        }
    }

    /// The flat work items.
    pub fn items(&self) -> &[WorkItem] {
        &self.items
    }

    /// Number of SSets covered.
    pub fn num_ssets(&self) -> usize {
        self.num_ssets
    }

    /// Number of agents per SSet used to split the work.
    pub fn agents_per_sset(&self) -> u32 {
        self.agents_per_sset
    }

    /// Total number of games the plan describes.
    pub fn total_games(&self) -> usize {
        self.items.iter().map(|i| i.opponent_range.len()).sum()
    }

    /// Per-item work weights (games per item) — the input the scheduler's
    /// load-balance reporting uses to quantify how skewed a plan is.
    pub fn item_weights(&self) -> Vec<u64> {
        self.items
            .iter()
            .map(|i| i.opponent_range.len() as u64)
            .collect()
    }

    /// Per-item **predicted cost** (ns) of the plan's games for a population
    /// under a cost model: cache-probe cheap for deterministic pairings,
    /// full simulated games otherwise. This is the weight vector the
    /// engine's cost-guided initial partition is seeded from.
    pub fn predicted_weights(
        &self,
        population: &Population,
        game: &egd_core::game::IpdGame,
        model: &egd_cost::CostModel,
    ) -> Vec<u64> {
        let strategies = population.strategies();
        self.items
            .iter()
            .map(|item| {
                let me = &strategies[item.sset];
                let opponents = population.opponents_of(item.sset);
                opponents[item.opponent_range.clone()]
                    .iter()
                    .map(|&opp| {
                        egd_cost::predict::pair_weight_ns(model, game, me, &strategies[opp])
                    })
                    .sum()
            })
            .collect()
    }

    /// Skew factor of the plan under a contiguous split into `workers`
    /// chunks: heaviest chunk weight over mean chunk weight (1.0 = perfectly
    /// balanced). This is the imbalance a *static, uniform* schedule is
    /// stuck with and that cost-guided partitioning (or stealing) removes.
    /// Delegates to the shared skew helper in `egd-cost`.
    pub fn static_skew(&self, workers: usize) -> f64 {
        egd_cost::balance::static_skew(&self.item_weights(), workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egd_core::sset::OpponentPolicy;
    use egd_core::state::MemoryDepth;
    use egd_core::strategy::StrategySpace;

    #[test]
    fn partition_validation() {
        assert!(SSetPartition::new(8, 0).is_err());
        assert!(SSetPartition::new(8, 3).is_ok());
    }

    #[test]
    fn blocks_cover_all_ssets_exactly_once() {
        for (ssets, workers) in [(16usize, 4usize), (17, 4), (5, 8), (1000, 7)] {
            let partition = SSetPartition::new(ssets, workers).unwrap();
            let mut covered = vec![0u32; ssets];
            for (_, block) in partition.blocks() {
                for s in block {
                    covered[s] += 1;
                }
            }
            assert!(covered.iter().all(|&c| c == 1), "{ssets} over {workers}");
        }
    }

    #[test]
    fn owner_of_matches_blocks() {
        let partition = SSetPartition::new(20, 6).unwrap();
        for sset in 0..20 {
            let owner = partition.owner_of(sset);
            assert!(partition.block(owner).contains(&sset));
        }
    }

    #[test]
    fn ssets_per_worker_ratio() {
        let partition = SSetPartition::new(4096, 256).unwrap();
        assert_eq!(partition.ssets_per_worker(), 16.0);
        // The pathological R = 0.5 case of Table VI / Fig. 6b.
        let thin = SSetPartition::new(32_768, 65_536).unwrap();
        assert_eq!(thin.ssets_per_worker(), 0.5);
        assert_eq!(thin.max_block_len(), 1);
    }

    #[test]
    fn work_plan_covers_every_pairing_once() {
        let population =
            Population::random(StrategySpace::pure(MemoryDepth::ONE), 12, 3, 1).unwrap();
        let plan = WorkPlan::for_population(&population);
        assert_eq!(plan.num_ssets(), 12);
        assert_eq!(plan.agents_per_sset(), 3);
        // Each SSet has 11 opponents, so 12 * 11 games in total.
        assert_eq!(plan.total_games(), 12 * 11);
        // Per SSet, the union of opponent ranges is 0..11 with no overlap.
        for sset in 0..12 {
            let mut covered: Vec<usize> = plan
                .items()
                .iter()
                .filter(|i| i.sset == sset)
                .flat_map(|i| i.opponent_range.clone())
                .collect();
            covered.sort_unstable();
            assert_eq!(covered, (0..11).collect::<Vec<_>>());
        }
    }

    #[test]
    fn work_plan_respects_self_play_policy() {
        let population = Population::random(StrategySpace::pure(MemoryDepth::ONE), 6, 2, 1)
            .unwrap()
            .with_opponent_policy(OpponentPolicy::AllIncludingSelf);
        let plan = WorkPlan::for_population(&population);
        assert_eq!(plan.total_games(), 6 * 6);
    }

    #[test]
    fn work_plan_skips_empty_chunks() {
        // More agents than opponents: some agents have nothing to do and get
        // no work item.
        let population =
            Population::random(StrategySpace::pure(MemoryDepth::ONE), 3, 8, 1).unwrap();
        let plan = WorkPlan::for_population(&population);
        assert_eq!(plan.total_games(), 3 * 2);
        assert!(plan.items().iter().all(|i| !i.opponent_range.is_empty()));
    }

    #[test]
    #[should_panic(expected = "worker index out of range")]
    fn out_of_range_worker_panics() {
        SSetPartition::new(8, 2).unwrap().block(2);
    }

    #[test]
    fn item_weights_and_static_skew() {
        let population =
            Population::random(StrategySpace::pure(MemoryDepth::ONE), 12, 3, 1).unwrap();
        let plan = WorkPlan::for_population(&population);
        let weights = plan.item_weights();
        assert_eq!(weights.len(), plan.items().len());
        assert_eq!(weights.iter().sum::<u64>(), plan.total_games() as u64);
        // A uniform plan splits evenly: skew close to 1.
        let skew = plan.static_skew(4);
        assert!((1.0..1.5).contains(&skew), "uniform plan skew {skew}");
        // Degenerate inputs are safe.
        assert_eq!(plan.static_skew(0), 1.0);
    }

    #[test]
    fn predicted_weights_price_mixed_items_above_pure_items() {
        use egd_core::game::IpdGame;
        use egd_core::payoff::PayoffMatrix;
        use egd_core::rng::{stream, StreamKind};
        use egd_core::strategy::{MixedStrategy, PureStrategy, StrategyKind};

        // Half the SSets pure (cacheable games), half mixed (simulated).
        let memory = MemoryDepth::ONE;
        let mut rng = stream(5, StreamKind::InitialStrategy, 1);
        let strategies: Vec<StrategyKind> = (0..8)
            .map(|i| {
                if i < 4 {
                    StrategyKind::Pure(PureStrategy::random(memory, &mut rng))
                } else {
                    StrategyKind::Mixed(MixedStrategy::random(memory, &mut rng))
                }
            })
            .collect();
        let population =
            Population::from_strategies(StrategySpace::mixed(memory), 1, strategies).unwrap();
        let plan = WorkPlan::for_population(&population);
        let game = IpdGame::new(memory, 100, PayoffMatrix::PAPER, 0.0).unwrap();
        let model = egd_cost::CostModel::blue_gene_like();
        let weights = plan.predicted_weights(&population, &game, &model);
        assert_eq!(weights.len(), plan.items().len());

        // Every item whose focal SSet is mixed must outweigh every item
        // whose focal SSet is pure *and* whose opponents include at most
        // the pure block (pure items still meet mixed opponents, so compare
        // focal-mixed vs focal-pure aggregate).
        let (mixed_total, mixed_count, pure_total, pure_count) = plan
            .items()
            .iter()
            .zip(&weights)
            .fold((0u64, 0u64, 0u64, 0u64), |acc, (item, &w)| {
                if item.sset >= 4 {
                    (acc.0 + w, acc.1 + 1, acc.2, acc.3)
                } else {
                    (acc.0, acc.1, acc.2 + w, acc.3 + 1)
                }
            });
        assert!(mixed_count > 0 && pure_count > 0);
        assert!(
            mixed_total / mixed_count > pure_total / pure_count,
            "mixed items ({mixed_total}/{mixed_count}) should outweigh pure items \
             ({pure_total}/{pure_count})"
        );
    }
}
