//! Game-play kernel variants: the Fig. 3 optimisation ladder.
//!
//! The paper reports the effect of three successive optimisations of the
//! per-game kernel and of the communication layer (Fig. 3). The computation
//! side of that ladder is reproduced by three kernels that produce identical
//! results at very different cost:
//!
//! | variant | corresponds to | key property |
//! |---------|----------------|--------------|
//! | [`KernelVariant::Naive`]      | "Original"             | explicit view lists, linear `find_state` scan (`O(4^n)` per round) |
//! | [`KernelVariant::Indexed`]    | "Compiler"             | packed 2n-bit state, O(1) strategy lookup per round |
//! | [`KernelVariant::Optimized`]  | "Instruction"          | indexed + branch-free payoff accumulation + cycle closing |
//!
//! (The "Comm" rung of the ladder concerns the communication layer and lives
//! in `egd-cluster`.)

use egd_core::error::EgdResult;
use egd_core::game::naive::NaiveIpd;
use egd_core::game::{GameOutcome, IpdGame};
use egd_core::payoff::PayoffMatrix;
use egd_core::state::{MemoryDepth, StateIndex, StateSpace};
use egd_core::strategy::PureStrategy;
use serde::{Deserialize, Serialize};

/// Which game-play kernel to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum KernelVariant {
    /// Paper-literal implementation with a linear state search.
    Naive,
    /// Packed-state, O(1)-lookup implementation without cycle closing.
    Indexed,
    /// Fully optimised: packed state, branch-free accumulation, cycle closing.
    #[default]
    Optimized,
}

impl KernelVariant {
    /// All variants, in ladder order.
    pub const LADDER: [KernelVariant; 3] = [
        KernelVariant::Naive,
        KernelVariant::Indexed,
        KernelVariant::Optimized,
    ];

    /// Human-readable label used by the Fig. 3 harness.
    pub fn label(self) -> &'static str {
        match self {
            KernelVariant::Naive => "naive",
            KernelVariant::Indexed => "indexed",
            KernelVariant::Optimized => "optimized",
        }
    }

    /// The kernel that implements a cost-model compute-optimisation level
    /// (the crate that owns the kernels also owns the mapping; the model
    /// itself lives in `egd-cost` and knows nothing about implementations).
    pub fn for_optimization(compute: egd_cost::ComputeOptimization) -> KernelVariant {
        match compute {
            egd_cost::ComputeOptimization::Baseline => KernelVariant::Naive,
            egd_cost::ComputeOptimization::Compiler => KernelVariant::Indexed,
            egd_cost::ComputeOptimization::Intrinsics => KernelVariant::Optimized,
        }
    }
}

/// Calibrates the compute coefficients of a [`egd_cost::CostModel`] by
/// timing the real kernels on the host machine (memory-one and memory-four
/// games). Stochastic full-game work — what `round_base_us` and
/// `round_per_state_bit_us` price — now runs through the lane-parallel
/// batched kernel ([`egd_core::game::IpdGame::play_batched`]), so those
/// coefficients are fitted from batched mixed-strategy games at the
/// engines' common lane width rather than from the one-game-at-a-time pure
/// kernel. The naive-scan penalty still comes from the Naive-vs-Indexed
/// pure-kernel gap (the ladder's "Original" rung has no batched form).
/// Communication coefficients keep their Blue Gene-like defaults because
/// the host has no torus to measure.
pub fn calibrated_cost_model() -> egd_cost::CostModel {
    use egd_core::game::{BatchedDraws, CompiledPairTable, CompiledStrategy};
    use egd_core::rng::{substream_state, StreamKind};
    use egd_core::strategy::{MixedStrategy, StrategyKind};
    use std::time::Instant;
    let mut model = egd_cost::CostModel::blue_gene_like();
    let rounds = 200u32;

    // Amortised µs per stochastic game through the batched kernel at the
    // widest lane chunk — the shape the engines' stochastic blocks run at.
    let time_batched = |memory: MemoryDepth| -> f64 {
        const LANES: usize = BatchedDraws::MAX_WIDTH;
        let game = IpdGame::new(memory, rounds, PayoffMatrix::PAPER, 0.0)
            .expect("noise-free calibration parameters are always valid");
        let mut rng = egd_core::rng::stream(1234, StreamKind::Auxiliary, 9);
        let a = CompiledStrategy::compile(&StrategyKind::Mixed(MixedStrategy::random(
            memory, &mut rng,
        )));
        let b = CompiledStrategy::compile(&StrategyKind::Mixed(MixedStrategy::random(
            memory, &mut rng,
        )));
        let table = CompiledPairTable::build(&a, &b);
        let mut batch = BatchedDraws::new();
        let run = |batch: &mut BatchedDraws| {
            batch.begin(memory.num_states());
            for k in 0..LANES {
                batch.push_game_table(
                    &table,
                    substream_state(1234, StreamKind::GamePlay, k as u64, 0),
                );
            }
            game.play_batched(batch).expect("batched calibration play");
        };
        for _ in 0..3 {
            run(&mut batch);
        }
        let reps = 50;
        let start = Instant::now();
        for _ in 0..reps {
            run(&mut batch);
        }
        start.elapsed().as_secs_f64() * 1e6 / (reps * LANES) as f64
    };

    let time_game = |variant: KernelVariant, memory: MemoryDepth| -> f64 {
        let kernel = GameKernel::new(variant, memory, rounds, PayoffMatrix::PAPER);
        let mut rng = egd_core::rng::stream(1234, egd_core::rng::StreamKind::Auxiliary, 7);
        let a = PureStrategy::random(memory, &mut rng);
        let b = PureStrategy::random(memory, &mut rng);
        // Warm up, then time a batch.
        for _ in 0..3 {
            let _ = kernel.play(&a, &b);
        }
        let reps = 50;
        let start = Instant::now();
        for _ in 0..reps {
            let _ = kernel.play(&a, &b).expect("kernel play");
        }
        start.elapsed().as_secs_f64() * 1e6 / reps as f64
    };

    let m1 = time_batched(MemoryDepth::ONE);
    let m4 = time_batched(MemoryDepth::FOUR);
    let per_round_m1 = m1 / rounds as f64;
    let per_round_m4 = m4 / rounds as f64;
    // Linear fit over state bits: memory-one has 2 bits, memory-four 8.
    let slope = ((per_round_m4 - per_round_m1) / 6.0).max(0.0);
    model.round_base_us = (per_round_m1 - 2.0 * slope).max(1e-4);
    model.round_per_state_bit_us = slope.max(1e-5);

    let naive_m1 = time_game(KernelVariant::Naive, MemoryDepth::ONE) / rounds as f64;
    let indexed_m1 = time_game(KernelVariant::Indexed, MemoryDepth::ONE) / rounds as f64;
    model.naive_scan_us_per_state =
        ((naive_m1 - indexed_m1) / MemoryDepth::ONE.num_states() as f64).max(1e-5);
    model
}

/// A deterministic pure-strategy game kernel with a selectable implementation.
#[derive(Debug, Clone)]
pub struct GameKernel {
    variant: KernelVariant,
    memory: MemoryDepth,
    rounds: u32,
    payoffs: PayoffMatrix,
    naive: Option<NaiveIpd>,
    optimized: IpdGame,
}

impl GameKernel {
    /// Creates a kernel with the paper's game defaults (200 rounds,
    /// `[3,0,4,1]`).
    pub fn paper_defaults(variant: KernelVariant, memory: MemoryDepth) -> Self {
        Self::new(variant, memory, 200, PayoffMatrix::PAPER)
    }

    /// Creates a kernel.
    pub fn new(
        variant: KernelVariant,
        memory: MemoryDepth,
        rounds: u32,
        payoffs: PayoffMatrix,
    ) -> Self {
        let naive =
            matches!(variant, KernelVariant::Naive).then(|| NaiveIpd::new(memory, rounds, payoffs));
        let optimized = IpdGame::new(memory, rounds, payoffs, 0.0)
            .expect("noise-free kernel parameters are always valid");
        GameKernel {
            variant,
            memory,
            rounds,
            payoffs,
            naive,
            optimized,
        }
    }

    /// The kernel variant.
    pub fn variant(&self) -> KernelVariant {
        self.variant
    }

    /// The memory depth the kernel plays at.
    pub fn memory(&self) -> MemoryDepth {
        self.memory
    }

    /// Rounds per game.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Plays one deterministic game between two pure strategies.
    pub fn play(&self, a: &PureStrategy, b: &PureStrategy) -> EgdResult<GameOutcome> {
        match self.variant {
            KernelVariant::Naive => self
                .naive
                .as_ref()
                .expect("naive engine built for naive variant")
                .play(a, b),
            KernelVariant::Indexed => self.play_indexed(a, b),
            KernelVariant::Optimized => self.optimized.play_pure(a, b),
        }
    }

    /// Plays a batch of pairings on the work-stealing scheduler, returning
    /// outcomes in input order. Standalone batch entry point for harnesses
    /// that drive the kernels directly (the `game_kernel` criterion bench,
    /// ablation studies); the generation engine's production path instead
    /// goes through [`crate::cache::ConcurrentPairEvaluator`]. Game lengths
    /// differ wildly across the optimisation ladder and memory depths, and
    /// the scheduler absorbs that skew.
    pub fn play_batch(
        &self,
        pairs: &[(&PureStrategy, &PureStrategy)],
    ) -> EgdResult<Vec<GameOutcome>> {
        use rayon::prelude::*;
        pairs
            .par_iter()
            .map(|(a, b)| self.play(a, b))
            .collect::<Vec<EgdResult<GameOutcome>>>()
            .into_iter()
            .collect()
    }

    /// The "Indexed" kernel: packed state with O(1) lookups, but every round
    /// simulated explicitly (no cycle closing) and payoffs accumulated
    /// through the branching `payoff()` path.
    fn play_indexed(&self, a: &PureStrategy, b: &PureStrategy) -> EgdResult<GameOutcome> {
        if a.memory() != self.memory || b.memory() != self.memory {
            return Err(egd_core::error::EgdError::InvalidConfig {
                reason: "strategy memory does not match the kernel".to_string(),
            });
        }
        let space = StateSpace::new(self.memory);
        let mut view_a = StateIndex::INITIAL;
        let mut outcome = GameOutcome {
            fitness_a: 0.0,
            fitness_b: 0.0,
            cooperations_a: 0,
            cooperations_b: 0,
            rounds: self.rounds,
        };
        for _ in 0..self.rounds {
            let view_b = space.swap_perspective(view_a);
            let move_a = a.move_for(view_a);
            let move_b = b.move_for(view_b);
            let (pa, pb) = self.payoffs.pair_payoffs(move_a, move_b);
            outcome.fitness_a += pa;
            outcome.fitness_b += pb;
            outcome.cooperations_a += move_a.is_cooperation() as u32;
            outcome.cooperations_b += move_b.is_cooperation() as u32;
            view_a = space.advance(view_a, move_a, move_b);
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egd_core::rng::{stream, StreamKind};
    use egd_core::strategy::NamedStrategy;

    #[test]
    fn ladder_order_and_labels() {
        assert_eq!(KernelVariant::LADDER.len(), 3);
        assert_eq!(KernelVariant::Naive.label(), "naive");
        assert_eq!(KernelVariant::Optimized.label(), "optimized");
        assert_eq!(KernelVariant::default(), KernelVariant::Optimized);
    }

    #[test]
    fn play_batch_matches_individual_plays() {
        let kernel = GameKernel::paper_defaults(KernelVariant::Optimized, MemoryDepth::ONE);
        let strategies: Vec<PureStrategy> = NamedStrategy::ALL
            .iter()
            .filter(|s| s.native_memory() == MemoryDepth::ONE)
            .map(|s| s.to_pure())
            .collect();
        let pairs: Vec<(&PureStrategy, &PureStrategy)> = strategies
            .iter()
            .flat_map(|a| strategies.iter().map(move |b| (a, b)))
            .collect();
        let batch = kernel.play_batch(&pairs).unwrap();
        assert_eq!(batch.len(), pairs.len());
        for ((a, b), outcome) in pairs.iter().zip(&batch) {
            let reference = kernel.play(a, b).unwrap();
            assert_eq!(outcome.fitness_a, reference.fitness_a);
            assert_eq!(outcome.fitness_b, reference.fitness_b);
        }
    }

    #[test]
    fn all_variants_agree_on_classics() {
        let kernels: Vec<GameKernel> = KernelVariant::LADDER
            .into_iter()
            .map(|v| GameKernel::paper_defaults(v, MemoryDepth::ONE))
            .collect();
        for a in NamedStrategy::ALL {
            for b in NamedStrategy::ALL {
                if a.native_memory() != MemoryDepth::ONE || b.native_memory() != MemoryDepth::ONE {
                    continue;
                }
                let sa = a.to_pure();
                let sb = b.to_pure();
                let reference = kernels[0].play(&sa, &sb).unwrap();
                for kernel in &kernels[1..] {
                    let outcome = kernel.play(&sa, &sb).unwrap();
                    assert_eq!(outcome.fitness_a, reference.fitness_a, "{a} vs {b}");
                    assert_eq!(outcome.fitness_b, reference.fitness_b, "{a} vs {b}");
                    assert_eq!(outcome.cooperations_a, reference.cooperations_a);
                }
            }
        }
    }

    #[test]
    fn all_variants_agree_on_random_memory_three() {
        let kernels: Vec<GameKernel> = KernelVariant::LADDER
            .into_iter()
            .map(|v| GameKernel::new(v, MemoryDepth::THREE, 64, PayoffMatrix::PAPER))
            .collect();
        let mut rng = stream(99, StreamKind::InitialStrategy, 0);
        for _ in 0..10 {
            let a = PureStrategy::random(MemoryDepth::THREE, &mut rng);
            let b = PureStrategy::random(MemoryDepth::THREE, &mut rng);
            let reference = kernels[2].play(&a, &b).unwrap();
            for kernel in &kernels[..2] {
                let outcome = kernel.play(&a, &b).unwrap();
                assert!((outcome.fitness_a - reference.fitness_a).abs() < 1e-9);
                assert!((outcome.fitness_b - reference.fitness_b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn kernel_rejects_memory_mismatch() {
        let kernel = GameKernel::paper_defaults(KernelVariant::Indexed, MemoryDepth::TWO);
        let shallow = NamedStrategy::TitForTat.to_pure();
        assert!(kernel.play(&shallow, &shallow).is_err());
    }

    #[test]
    fn accessors() {
        let kernel = GameKernel::new(
            KernelVariant::Indexed,
            MemoryDepth::TWO,
            50,
            PayoffMatrix::PAPER,
        );
        assert_eq!(kernel.variant(), KernelVariant::Indexed);
        assert_eq!(kernel.memory(), MemoryDepth::TWO);
        assert_eq!(kernel.rounds(), 50);
    }

    #[test]
    fn optimization_levels_map_to_kernels() {
        use egd_cost::ComputeOptimization;
        assert_eq!(
            KernelVariant::for_optimization(ComputeOptimization::Baseline),
            KernelVariant::Naive
        );
        assert_eq!(
            KernelVariant::for_optimization(ComputeOptimization::Compiler),
            KernelVariant::Indexed
        );
        assert_eq!(
            KernelVariant::for_optimization(ComputeOptimization::Intrinsics),
            KernelVariant::Optimized
        );
    }

    #[test]
    fn calibrated_model_is_positive_and_ordered() {
        use egd_cost::ComputeOptimization;
        let model = calibrated_cost_model();
        assert!(model.round_base_us > 0.0);
        assert!(model.round_per_state_bit_us > 0.0);
        assert!(model.naive_scan_us_per_state > 0.0);
        // Calibration must preserve the qualitative ladder ordering.
        let naive = model.game_time_us(MemoryDepth::TWO, 200, ComputeOptimization::Baseline, 1.0);
        let optimised =
            model.game_time_us(MemoryDepth::TWO, 200, ComputeOptimization::Intrinsics, 1.0);
        assert!(naive > optimised);
    }
}
