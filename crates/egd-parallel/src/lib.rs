//! # egd-parallel
//!
//! Shared-memory parallel execution engine for evolutionary game dynamics,
//! implementing the paper's *multi-level decomposition* (§IV–V):
//!
//! * the population's SSets are divided into chunks of work (the role MPI
//!   ranks play on Blue Gene — here they map onto worker threads), and
//! * within each SSet the games against the assigned opponent strategies are
//!   played concurrently by the threads of a [rayon] pool, mirroring the
//!   paper's OpenMP level.
//!
//! The engine produces *bit-identical* populations to the sequential
//! reference in `egd-core` for any thread count: all randomness is drawn from
//! per-`(pair, generation)` streams and reductions are performed in a fixed
//! order.
//!
//! The crate also contains the game-play [`kernel`] variants that make up the
//! optimisation ladder of the paper's Fig. 3 (naive linear state search →
//! indexed lookup → branch-free accumulation with cycle closing).
//!
//! Parallel sections execute on the `egd-sched` adaptive work-stealing
//! scheduler (see that crate's docs for the determinism contract);
//! [`ThreadConfig::with_policy`](thread_pool::ThreadConfig::with_policy)
//! switches back to the legacy static split for load-balance A/B studies,
//! and [`ParallelEngine::last_sched_stats`] /
//! [`simulation::ParallelReport::sched`] surface steal counts and per-worker
//! busy time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod grouping;
pub mod intern;
pub mod kernel;
pub mod partition;
pub mod reduction;
pub mod simulation;
pub mod soa;
pub mod stochastic;
pub mod thread_pool;

pub use cache::ConcurrentPairEvaluator;
pub use engine::{GenerationTiming, ParallelEngine};
pub use grouping::StrategyGrouping;
pub use intern::{CompiledInterner, FingerprintBuildHasher, FingerprintMap};
pub use kernel::{calibrated_cost_model, GameKernel, KernelVariant};
pub use partition::{SSetPartition, WorkItem, WorkPlan};
pub use simulation::{ParallelReport, ParallelSimulation};
pub use soa::PopulationSoA;
pub use stochastic::{StochasticBlock, StochasticScratch};
pub use thread_pool::{SchedPolicy, ThreadConfig};

pub use egd_sched::{SchedStats, WorkerStats};
