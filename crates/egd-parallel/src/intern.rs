//! Per-generation compiled-strategy interning.
//!
//! The stochastic kernel ([`egd_core::game::CompiledStrategy`]) moves all
//! per-strategy work (probability → threshold conversion, perspective-swap
//! permutation) out of the game loop — but only pays off if each distinct
//! strategy is compiled **once per generation**, not once per game. A
//! generation evaluates `G × G` distinct-pair cells over `G` distinct
//! strategies ([`crate::grouping::StrategyGrouping`] computes the groups),
//! so naive per-game compilation would redo the same work `2G` times per
//! strategy.
//!
//! [`CompiledInterner`] maps strategy fingerprints to shared compiled
//! tables. Fingerprints are already high-quality 64-bit hashes
//! ([`StrategyKind::fingerprint`] is FNV-mixed), so the map uses an
//! *identity* hasher ([`FingerprintBuildHasher`]) instead of re-hashing
//! them through SipHash. Entries live for one generation: strategy churn
//! under mutation would otherwise grow the table without bound over a
//! 30 000-generation run.

use egd_core::game::{CompiledPairTable, CompiledStrategy};
use egd_core::strategy::StrategyKind;
use egd_obs::{obs_span, SpanKind};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A no-op hasher for keys that are already uniformly distributed 64-bit
/// hashes (strategy fingerprints): `finish` returns the key verbatim.
#[derive(Debug, Default, Clone)]
pub struct FingerprintHasher(u64);

impl Hasher for FingerprintHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 key fragments (not used by the fingerprint
        // maps, but keeps the hasher total): FNV-1a fold.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = i;
    }
}

/// [`BuildHasher`] producing [`FingerprintHasher`]s.
#[derive(Debug, Default, Clone)]
pub struct FingerprintBuildHasher;

impl BuildHasher for FingerprintBuildHasher {
    type Hasher = FingerprintHasher;

    #[inline]
    fn build_hasher(&self) -> FingerprintHasher {
        FingerprintHasher::default()
    }
}

/// A `HashMap` keyed by strategy fingerprints with identity hashing.
pub type FingerprintMap<V> = HashMap<u64, V, FingerprintBuildHasher>;

#[derive(Debug)]
struct InternerInner {
    generation: u64,
    map: FingerprintMap<Arc<CompiledStrategy>>,
    /// Dense pair tables for the batched kernel, keyed by the fingerprint
    /// pair. Ordinary SipHash here: a lookup happens once per *pairing* per
    /// block (not per round), and a 128-bit key squeezed through the
    /// identity hasher would collide by construction.
    pairs: HashMap<(u64, u64), Arc<CompiledPairTable>>,
}

/// Thread-safe per-generation intern table of compiled strategies.
///
/// The common case (every strategy pre-compiled by
/// [`CompiledInterner::prepare`]) takes one read lock and clones an `Arc`;
/// the miss path compiles *outside* any lock and then races benignly on
/// insertion (first writer wins, later compiles are dropped).
#[derive(Debug)]
pub struct CompiledInterner {
    inner: RwLock<InternerInner>,
    /// Compilations performed over the interner's lifetime (racing compiles
    /// whose result is dropped still count: they measure work done).
    compiles: AtomicU64,
    /// Pair-table constructions performed over the interner's lifetime.
    pair_builds: AtomicU64,
}

impl Default for CompiledInterner {
    fn default() -> Self {
        Self::new()
    }
}

impl CompiledInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        CompiledInterner {
            inner: RwLock::new(InternerInner {
                generation: 0,
                map: FingerprintMap::default(),
                pairs: HashMap::new(),
            }),
            compiles: AtomicU64::new(0),
            pair_builds: AtomicU64::new(0),
        }
    }

    /// Total strategy compilations performed so far.
    pub fn compiles(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed)
    }

    /// Total pair-table constructions performed so far.
    pub fn pair_builds(&self) -> u64 {
        self.pair_builds.load(Ordering::Relaxed)
    }

    /// Compiles one strategy under a `Compile` span (payload: fingerprint).
    fn compile(&self, fp: u64, strategy: &StrategyKind) -> Arc<CompiledStrategy> {
        let compiled = obs_span!(SpanKind::Compile, fp, {
            Arc::new(CompiledStrategy::compile(strategy))
        });
        self.compiles.fetch_add(1, Ordering::Relaxed);
        compiled
    }

    /// Number of strategies currently interned (for the active generation).
    pub fn len(&self) -> usize {
        self.inner.read().map.len()
    }

    /// Whether the intern table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the compiled form of `strategy` for `generation`, compiling
    /// and interning it on first sight within the generation.
    pub fn compiled_for(&self, generation: u64, strategy: &StrategyKind) -> Arc<CompiledStrategy> {
        let fp = strategy.fingerprint();
        {
            let inner = self.inner.read();
            if inner.generation == generation {
                if let Some(compiled) = inner.map.get(&fp) {
                    return Arc::clone(compiled);
                }
            }
        }
        let compiled = self.compile(fp, strategy);
        let mut inner = self.inner.write();
        if inner.generation != generation {
            inner.map.clear();
            inner.pairs.clear();
            inner.generation = generation;
        }
        Arc::clone(inner.map.entry(fp).or_insert(compiled))
    }

    /// Returns the dense pair table for `(a, b)` in `generation`, building
    /// and interning it on first sight. Repeated pairings — the focal
    /// strategy of an SSet block against the same opponents, generation
    /// after generation within a converged population — skip table
    /// construction entirely: one read lock, one `Arc` clone.
    pub fn pair_table_for(
        &self,
        generation: u64,
        a: &StrategyKind,
        b: &StrategyKind,
    ) -> Arc<CompiledPairTable> {
        let key = (a.fingerprint(), b.fingerprint());
        {
            let inner = self.inner.read();
            if inner.generation == generation {
                if let Some(table) = inner.pairs.get(&key) {
                    return Arc::clone(table);
                }
            }
        }
        // Build outside any lock (benign race: first writer wins).
        let ca = self.compiled_for(generation, a);
        let cb = self.compiled_for(generation, b);
        let table = Arc::new(CompiledPairTable::build(&ca, &cb));
        self.pair_builds.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.write();
        if inner.generation != generation {
            inner.map.clear();
            inner.pairs.clear();
            inner.generation = generation;
        }
        Arc::clone(inner.pairs.entry(key).or_insert(table))
    }

    /// Number of pair tables currently interned (for the active generation).
    pub fn num_pairs(&self) -> usize {
        self.inner.read().pairs.len()
    }

    /// Pre-compiles every distinct strategy of a population (one compile per
    /// group representative) under a single write lock, so the parallel
    /// section that follows hits the read-only fast path exclusively.
    pub fn prepare(&self, generation: u64, strategies: &[StrategyKind], group_rep: &[usize]) {
        let compiled: Vec<(u64, Arc<CompiledStrategy>)> = group_rep
            .iter()
            .map(|&i| {
                let fp = strategies[i].fingerprint();
                (fp, self.compile(fp, &strategies[i]))
            })
            .collect();
        let mut inner = self.inner.write();
        if inner.generation != generation {
            inner.map.clear();
            inner.pairs.clear();
            inner.generation = generation;
        }
        for (fp, c) in compiled {
            inner.map.entry(fp).or_insert(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::StrategyGrouping;
    use egd_core::rng::{stream, StreamKind};
    use egd_core::state::MemoryDepth;
    use egd_core::strategy::MixedStrategy;

    fn mixed(seed: u64) -> StrategyKind {
        let mut rng = stream(seed, StreamKind::InitialStrategy, seed);
        StrategyKind::Mixed(MixedStrategy::random(MemoryDepth::ONE, &mut rng))
    }

    #[test]
    fn identity_hasher_returns_key() {
        let mut h = FingerprintHasher::default();
        h.write_u64(0xDEAD_BEEF_1234_5678);
        assert_eq!(h.finish(), 0xDEAD_BEEF_1234_5678);
    }

    #[test]
    fn interns_once_per_generation() {
        let interner = CompiledInterner::new();
        let s = mixed(1);
        let a = interner.compiled_for(0, &s);
        let b = interner.compiled_for(0, &s);
        assert!(Arc::ptr_eq(&a, &b), "same generation must share the Arc");
        assert_eq!(interner.len(), 1);
    }

    #[test]
    fn generation_rollover_clears_the_table() {
        let interner = CompiledInterner::new();
        let s = mixed(2);
        let t = mixed(3);
        interner.compiled_for(0, &s);
        interner.compiled_for(0, &t);
        assert_eq!(interner.len(), 2);
        interner.compiled_for(1, &s);
        assert_eq!(interner.len(), 1, "old generation entries must be dropped");
    }

    #[test]
    fn pair_tables_intern_once_per_generation() {
        let interner = CompiledInterner::new();
        let a = mixed(8);
        let b = mixed(9);
        let t1 = interner.pair_table_for(0, &a, &b);
        let t2 = interner.pair_table_for(0, &a, &b);
        assert!(Arc::ptr_eq(&t1, &t2), "repeated pairing must share the Arc");
        assert_eq!(interner.pair_builds(), 1);
        assert_eq!(interner.num_pairs(), 1);
        // The reversed pairing is a distinct table (perspective swap).
        let t3 = interner.pair_table_for(0, &b, &a);
        assert!(!Arc::ptr_eq(&t1, &t3));
        assert_eq!(interner.num_pairs(), 2);
        // Rollover drops pair tables along with strategies.
        interner.pair_table_for(1, &a, &b);
        assert_eq!(interner.num_pairs(), 1);
        // The tables agree with direct construction.
        let ca = CompiledStrategy::compile(&a);
        let cb = CompiledStrategy::compile(&b);
        let direct = CompiledPairTable::build(&ca, &cb);
        assert_eq!(t1.interleaved_thr(), direct.interleaved_thr());
    }

    #[test]
    fn prepare_compiles_group_representatives() {
        let strategies = vec![mixed(4), mixed(5), mixed(4)];
        let grouping = StrategyGrouping::of(&strategies);
        let interner = CompiledInterner::new();
        interner.prepare(7, &strategies, &grouping.group_rep);
        assert_eq!(interner.len(), 2);
        // Lookup after prepare shares the prepared Arc.
        let a = interner.compiled_for(7, &strategies[0]);
        let b = interner.compiled_for(7, &strategies[2]);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
