//! Lane-parallel batched stochastic game play over an agent's opponent
//! block.
//!
//! The agent-level work plan ([`crate::partition::WorkPlan`]) hands each
//! task one agent's chunk of opponents. For stochastic pairings the
//! paper-literal path paid, per game, for substream derivation (three
//! SplitMix64 cascades), strategy re-compilation, AoS outcome handling —
//! and, per *round*, the full latency of one serial 128-bit-multiply RNG
//! chain. [`StochasticBlock`] amortises all of it across the block:
//!
//! * the per-pair PCG stream states are derived in one pass into a reusable
//!   seed buffer,
//! * each pairing's dense threshold tables come from the per-generation
//!   pair interner ([`crate::intern::CompiledInterner::pair_table_for`]), so
//!   repeated pairings skip table construction,
//! * the whole block is played by the lane-parallel batched kernel
//!   ([`egd_core::game::BatchedDraws`] +
//!   [`IpdGame::play_batched`](egd_core::game::IpdGame::play_batched)):
//!   up to 16 games advance per RNG-draw batch, interleaving their
//!   independent multiply chains, and
//! * results land in structure-of-arrays scratch buffers that the caller
//!   reuses across blocks, so the reduction loop reads dense `f64` lanes.
//!
//! The outcomes are bit-identical to per-pair
//! [`ConcurrentPairEvaluator::pair_payoff`] calls: the streams are keyed by
//! the same `(pair, generation)` ids, and every batched lane consumes the
//! exact draw sequence of the one-game-at-a-time compiled kernel (itself
//! draw-equivalent to the paper-literal loop).

use crate::cache::ConcurrentPairEvaluator;
use egd_core::error::EgdResult;
use egd_core::game::{BatchedDraws, GameOutcome};
use egd_core::rng::{substream_state, StreamKind};
use egd_core::strategy::StrategyKind;

/// Reusable structure-of-arrays scratch for one opponent block.
#[derive(Debug, Default, Clone)]
pub struct StochasticScratch {
    /// Precomputed per-pair PCG stream states.
    seeds: Vec<u128>,
    /// The lane batch the block is played through (retains its allocations
    /// across blocks).
    batch: BatchedDraws,
    /// Payoff to the focal agent, per opponent.
    pub fitness_a: Vec<f64>,
    /// Payoff to the opponent, per opponent.
    pub fitness_b: Vec<f64>,
    /// Focal-agent cooperations, per opponent.
    pub coop_a: Vec<u32>,
    /// Opponent cooperations, per opponent.
    pub coop_b: Vec<u32>,
}

impl StochasticScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of games recorded by the last block.
    pub fn len(&self) -> usize {
        self.fitness_a.len()
    }

    /// Whether the scratch holds no results.
    pub fn is_empty(&self) -> bool {
        self.fitness_a.is_empty()
    }

    fn reset(&mut self, n: usize) {
        self.seeds.clear();
        self.seeds.reserve(n);
        self.fitness_a.clear();
        self.fitness_a.reserve(n);
        self.fitness_b.clear();
        self.fitness_b.reserve(n);
        self.coop_a.clear();
        self.coop_a.reserve(n);
        self.coop_b.clear();
        self.coop_b.reserve(n);
    }

    /// The `k`-th game's outcome reassembled from the SoA lanes.
    pub fn outcome(&self, k: usize, rounds: u32) -> GameOutcome {
        GameOutcome {
            fitness_a: self.fitness_a[k],
            fitness_b: self.fitness_b[k],
            cooperations_a: self.coop_a[k],
            cooperations_b: self.coop_b[k],
            rounds,
        }
    }
}

/// Block-plays one focal strategy against a slice of stochastic opponents.
#[derive(Debug)]
pub struct StochasticBlock<'a> {
    evaluator: &'a ConcurrentPairEvaluator,
}

impl<'a> StochasticBlock<'a> {
    /// Creates a block player backed by `evaluator`'s game, seed and
    /// compiled-strategy interner.
    pub fn new(evaluator: &'a ConcurrentPairEvaluator) -> Self {
        StochasticBlock { evaluator }
    }

    /// Plays `a` (population index `a_index`) against every `(index,
    /// strategy)` opponent in the block, writing per-opponent results into
    /// `scratch`. All pairings must be stochastic for this game (callers
    /// route deterministic pairings through the payoff cache instead).
    pub fn play(
        &self,
        a_index: usize,
        a: &StrategyKind,
        opponents: &[(usize, &StrategyKind)],
        generation: u64,
        scratch: &mut StochasticScratch,
    ) -> EgdResult<()> {
        self.play_iter(a_index, a, opponents.iter().copied(), generation, scratch)
    }

    /// Like [`StochasticBlock::play`], with opponents given as population
    /// indices into `strategies` — lets callers keep reusable index buffers
    /// instead of building per-block reference lists.
    pub fn play_indexed(
        &self,
        a_index: usize,
        a: &StrategyKind,
        opponent_indices: &[usize],
        strategies: &[StrategyKind],
        generation: u64,
        scratch: &mut StochasticScratch,
    ) -> EgdResult<()> {
        self.play_iter(
            a_index,
            a,
            opponent_indices.iter().map(|&j| (j, &strategies[j])),
            generation,
            scratch,
        )
    }

    fn play_iter<'b, I>(
        &self,
        a_index: usize,
        a: &StrategyKind,
        opponents: I,
        generation: u64,
        scratch: &mut StochasticScratch,
    ) -> EgdResult<()>
    where
        I: Iterator<Item = (usize, &'b StrategyKind)> + ExactSizeIterator + Clone,
    {
        let evaluator = self.evaluator;
        let game = evaluator.game();
        let seed = evaluator.seed();
        scratch.reset(opponents.len());

        // Pass 1 (SoA): derive every pair's stream state up front.
        for (b_index, _) in opponents.clone() {
            let pair_id = (a_index as u64) << 32 | b_index as u64;
            scratch.seeds.push(substream_state(
                seed,
                StreamKind::GamePlay,
                pair_id,
                generation,
            ));
        }

        // Pass 2 (SoA): gather every pairing's interned dense tables into
        // the lane batch…
        scratch.batch.begin(game.memory().num_states());
        for (k, (_, b)) in opponents.enumerate() {
            let table = evaluator.pair_table_for(generation, a, b);
            scratch.batch.push_game_table(&table, scratch.seeds[k]);
        }

        // …and advance all lanes together through the batched kernel.
        game.play_batched(&mut scratch.batch)?;
        scratch
            .fitness_a
            .extend_from_slice(&scratch.batch.fitness_a);
        scratch
            .fitness_b
            .extend_from_slice(&scratch.batch.fitness_b);
        scratch
            .coop_a
            .extend_from_slice(&scratch.batch.cooperations_a);
        scratch
            .coop_b
            .extend_from_slice(&scratch.batch.cooperations_b);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egd_core::config::SimulationConfig;
    use egd_core::simulation::FitnessMode;
    use egd_core::state::MemoryDepth;

    fn config(noise: f64) -> SimulationConfig {
        SimulationConfig::builder()
            .memory(MemoryDepth::ONE)
            .num_ssets(10)
            .rounds_per_game(40)
            .noise(noise)
            .seed(23)
            .build()
            .unwrap()
    }

    #[test]
    fn block_matches_per_pair_evaluator() {
        let cfg = config(0.03); // noise makes every pairing stochastic
        let population = cfg.initial_population().unwrap();
        let strategies = population.strategies();
        let evaluator = ConcurrentPairEvaluator::new(&cfg, FitnessMode::Simulated).unwrap();
        let block = StochasticBlock::new(&evaluator);
        let mut scratch = StochasticScratch::new();

        let a_index = 0usize;
        let opponents: Vec<(usize, &StrategyKind)> =
            (1..strategies.len()).map(|j| (j, &strategies[j])).collect();
        for generation in 0..3u64 {
            block
                .play(
                    a_index,
                    &strategies[a_index],
                    &opponents,
                    generation,
                    &mut scratch,
                )
                .unwrap();
            assert_eq!(scratch.len(), opponents.len());
            for (k, &(j, b)) in opponents.iter().enumerate() {
                let (to_a, to_b) = evaluator
                    .pair_payoff(a_index, &strategies[a_index], j, b, generation)
                    .unwrap();
                assert_eq!(to_a.to_bits(), scratch.fitness_a[k].to_bits());
                assert_eq!(to_b.to_bits(), scratch.fitness_b[k].to_bits());
            }
        }
    }

    #[test]
    fn scratch_outcome_reassembles() {
        let cfg = config(0.05);
        let population = cfg.initial_population().unwrap();
        let strategies = population.strategies();
        let evaluator = ConcurrentPairEvaluator::new(&cfg, FitnessMode::Simulated).unwrap();
        let block = StochasticBlock::new(&evaluator);
        let mut scratch = StochasticScratch::new();
        let opponents = [(1usize, &strategies[1])];
        block
            .play(0, &strategies[0], &opponents, 0, &mut scratch)
            .unwrap();
        let outcome = scratch.outcome(0, cfg.rounds_per_game);
        assert_eq!(outcome.rounds, cfg.rounds_per_game);
        assert_eq!(outcome.fitness_a, scratch.fitness_a[0]);
        assert!(!scratch.is_empty());
    }
}
