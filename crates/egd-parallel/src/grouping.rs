//! Strategy grouping by fingerprint.
//!
//! Every engine that exploits the SSet abstraction — the shared-memory
//! engine, the distributed executors, the benchmark cost probes — first
//! collapses the population to its distinct strategies so each pair payoff
//! is computed once per group instead of once per SSet pair. The grouping
//! is **determinism-critical**: representative indices feed the per-pair
//! random streams, so every consumer must group identically (first
//! occurrence order) or bit-identical cross-engine results break. This
//! module is that single shared implementation.

use egd_core::strategy::StrategyKind;
use std::collections::HashMap;

/// A population's strategies collapsed to distinct groups, in first
/// occurrence order.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyGrouping {
    /// `group_of[sset]` is the group index of that SSet's strategy.
    pub group_of: Vec<usize>,
    /// `group_rep[g]` is the first SSet index holding group `g`'s strategy
    /// (the representative whose index keys the random streams).
    pub group_rep: Vec<usize>,
    /// Number of SSets in each group (as `f64`, ready for fitness sums).
    pub group_count: Vec<f64>,
}

impl StrategyGrouping {
    /// Groups `strategies` by fingerprint in first-occurrence order.
    pub fn of(strategies: &[StrategyKind]) -> Self {
        let mut group_of = Vec::with_capacity(strategies.len());
        let mut group_rep = Vec::new();
        let mut group_count: Vec<f64> = Vec::new();
        let mut by_fingerprint: HashMap<u64, usize> = HashMap::new();
        for (i, s) in strategies.iter().enumerate() {
            let fp = s.fingerprint();
            let g = *by_fingerprint.entry(fp).or_insert_with(|| {
                group_rep.push(i);
                group_count.push(0.0);
                group_rep.len() - 1
            });
            group_count[g] += 1.0;
            group_of.push(g);
        }
        StrategyGrouping {
            group_of,
            group_rep,
            group_count,
        }
    }

    /// Number of distinct strategy groups.
    pub fn num_groups(&self) -> usize {
        self.group_rep.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egd_core::state::MemoryDepth;
    use egd_core::strategy::PureStrategy;

    fn strategy(bits: &str) -> StrategyKind {
        StrategyKind::Pure(PureStrategy::from_bitstring(MemoryDepth::ONE, bits).unwrap())
    }

    #[test]
    fn groups_in_first_occurrence_order() {
        let strategies = vec![
            strategy("0110"),
            strategy("1111"),
            strategy("0110"),
            strategy("0000"),
            strategy("1111"),
        ];
        let grouping = StrategyGrouping::of(&strategies);
        assert_eq!(grouping.num_groups(), 3);
        assert_eq!(grouping.group_of, vec![0, 1, 0, 2, 1]);
        assert_eq!(grouping.group_rep, vec![0, 1, 3]);
        assert_eq!(grouping.group_count, vec![2.0, 2.0, 1.0]);
    }

    #[test]
    fn empty_and_singleton() {
        let empty = StrategyGrouping::of(&[]);
        assert_eq!(empty.num_groups(), 0);
        let one = StrategyGrouping::of(&[strategy("0101")]);
        assert_eq!(one.group_of, vec![0]);
        assert_eq!(one.group_rep, vec![0]);
    }
}
