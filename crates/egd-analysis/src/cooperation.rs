//! Cooperation metrics.
//!
//! The scientific question behind the paper is the *emergence of
//! cooperation*: how much of the population plays cooperatively once
//! selection and mutation have done their work. This module provides two
//! measures:
//!
//! * a cheap structural index based on the strategies' cooperation
//!   propensity, and
//! * an exact behavioural index that evaluates the expected cooperation rate
//!   of games between the population's strategies with the Markov analyser.

use egd_core::error::EgdResult;
use egd_core::game::MarkovGame;
use egd_core::population::Population;
use egd_core::strategy::{Strategy, StrategyKind};

/// Structural cooperation index: the mean per-state cooperation probability
/// across the population's strategies (1.0 = everyone always cooperates).
pub fn population_cooperation_index(population: &Population) -> f64 {
    population.mean_cooperation_propensity()
}

/// Behavioural cooperation rate: the expected fraction of cooperative moves
/// when the distinct strategies of the population play each other, weighted
/// by their abundances. Exact (no sampling), using the Markov analyser.
pub fn expected_cooperation_rate(population: &Population, game: &MarkovGame) -> EgdResult<f64> {
    let census = population.census();
    let total = population.num_ssets() as f64;
    let mut weighted = 0.0;
    let mut weight_sum = 0.0;
    for a in &census {
        for b in &census {
            let weight = (a.count as f64 / total) * (b.count as f64 / total);
            let payoffs = game.stationary(&a.representative, &b.representative)?;
            weighted += weight * payoffs.cooperation_a;
            weight_sum += weight;
        }
    }
    Ok(if weight_sum > 0.0 {
        weighted / weight_sum
    } else {
        0.0
    })
}

/// Expected per-round payoff of a focal strategy against a population
/// (used to reason about invasion: can a mutant outperform the residents?).
pub fn invasion_payoff(
    invader: &StrategyKind,
    population: &Population,
    game: &MarkovGame,
) -> EgdResult<f64> {
    let census = population.census();
    let total = population.num_ssets() as f64;
    let mut expected = 0.0;
    for entry in &census {
        let weight = entry.count as f64 / total;
        let payoffs = game.stationary(invader, &entry.representative)?;
        expected += weight * payoffs.payoff_a;
    }
    Ok(expected)
}

/// Cooperation propensity of a single strategy (mean over states).
pub fn strategy_cooperation_propensity(strategy: &StrategyKind) -> f64 {
    let states = strategy.memory().num_states();
    (0..states as u32)
        .map(|s| strategy.cooperation_probability(egd_core::state::StateIndex(s)))
        .sum::<f64>()
        / states as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use egd_core::state::MemoryDepth;
    use egd_core::strategy::{NamedStrategy, StrategySpace};

    fn population_of(named: &[(NamedStrategy, usize)]) -> Population {
        let mut strategies = Vec::new();
        for (n, count) in named {
            for _ in 0..*count {
                strategies.push(StrategyKind::Pure(n.to_pure()));
            }
        }
        Population::from_strategies(StrategySpace::pure(MemoryDepth::ONE), 1, strategies).unwrap()
    }

    #[test]
    fn structural_index_limits() {
        let allc = population_of(&[(NamedStrategy::AlwaysCooperate, 4)]);
        assert_eq!(population_cooperation_index(&allc), 1.0);
        let alld = population_of(&[(NamedStrategy::AlwaysDefect, 4)]);
        assert_eq!(population_cooperation_index(&alld), 0.0);
        let mixed = population_of(&[
            (NamedStrategy::AlwaysCooperate, 2),
            (NamedStrategy::AlwaysDefect, 2),
        ]);
        assert!((population_cooperation_index(&mixed) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn behavioural_rate_of_wsls_population_is_high_under_noise() {
        let game = MarkovGame::new(
            MemoryDepth::ONE,
            200,
            egd_core::payoff::PayoffMatrix::PAPER,
            0.01,
        )
        .unwrap();
        let wsls = population_of(&[(NamedStrategy::WinStayLoseShift, 6)]);
        let rate = expected_cooperation_rate(&wsls, &game).unwrap();
        assert!(rate > 0.9, "WSLS population cooperation rate {rate}");

        let alld = population_of(&[(NamedStrategy::AlwaysDefect, 6)]);
        let rate = expected_cooperation_rate(&alld, &game).unwrap();
        assert!(rate < 0.1, "ALLD population cooperation rate {rate}");
    }

    #[test]
    fn alld_invades_allc_population() {
        let game = MarkovGame::paper_defaults(MemoryDepth::ONE);
        let residents = population_of(&[(NamedStrategy::AlwaysCooperate, 8)]);
        let alld = StrategyKind::Pure(NamedStrategy::AlwaysDefect.to_pure());
        let allc = StrategyKind::Pure(NamedStrategy::AlwaysCooperate.to_pure());
        let invader_payoff = invasion_payoff(&alld, &residents, &game).unwrap();
        let resident_payoff = invasion_payoff(&allc, &residents, &game).unwrap();
        assert!(
            invader_payoff > resident_payoff,
            "ALLD ({invader_payoff}) must out-earn ALLC ({resident_payoff}) in an ALLC population"
        );
    }

    #[test]
    fn wsls_resists_alld_invasion_under_noise() {
        // Against a WSLS population with a little noise, ALLD earns less than
        // a WSLS resident — the evolutionary-stability fact behind Fig. 2.
        let game = MarkovGame::new(
            MemoryDepth::ONE,
            200,
            egd_core::payoff::PayoffMatrix::PAPER,
            0.01,
        )
        .unwrap();
        let residents = population_of(&[(NamedStrategy::WinStayLoseShift, 8)]);
        let alld = StrategyKind::Pure(NamedStrategy::AlwaysDefect.to_pure());
        let wsls = StrategyKind::Pure(NamedStrategy::WinStayLoseShift.to_pure());
        let invader = invasion_payoff(&alld, &residents, &game).unwrap();
        let resident = invasion_payoff(&wsls, &residents, &game).unwrap();
        assert!(
            resident > invader,
            "WSLS residents ({resident}) must out-earn an ALLD invader ({invader})"
        );
    }

    #[test]
    fn strategy_propensity() {
        assert_eq!(
            strategy_cooperation_propensity(&StrategyKind::Pure(
                NamedStrategy::AlwaysCooperate.to_pure()
            )),
            1.0
        );
        assert_eq!(
            strategy_cooperation_propensity(&StrategyKind::Pure(
                NamedStrategy::WinStayLoseShift.to_pure()
            )),
            0.5
        );
    }
}
