//! # egd-analysis
//!
//! Analysis toolkit for evolutionary game dynamics runs:
//!
//! * [`kmeans`] — Lloyd k-means clustering of strategy genomes, used to build
//!   the paper's Fig. 2 population maps (clusters of similar strategies make
//!   the dominant strategy visually obvious).
//! * [`census`] — strategy censuses and named-strategy identification
//!   (how much of the population is WSLS / TFT / ALLC / ALLD).
//! * [`cooperation`] — cooperation metrics of populations and pairings.
//! * [`efficiency`] — speedup / parallel-efficiency computations shared by
//!   the scaling harnesses.
//! * [`timeseries`] — generation time series built from simulation history.
//! * [`export`] — CSV export of experiment results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod census;
pub mod cooperation;
pub mod efficiency;
pub mod export;
pub mod kmeans;
pub mod timeseries;

pub use census::{NamedCensus, StrategyCensus};
pub use cooperation::population_cooperation_index;
pub use efficiency::{parallel_efficiency, speedup, EfficiencyPoint};
pub use export::{to_csv, CsvTable};
pub use kmeans::{KMeans, KMeansResult};
pub use timeseries::TimeSeries;
