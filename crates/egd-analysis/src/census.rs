//! Strategy censuses: what the population is made of.

use egd_core::population::Population;
use egd_core::strategy::{NamedStrategy, StrategyKind};
use serde::{Deserialize, Serialize};

/// A census of the distinct strategies in a population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyCensus {
    /// `(strategy, count)` pairs, sorted by descending count.
    pub entries: Vec<(StrategyKind, usize)>,
    /// Number of SSets in the population.
    pub total: usize,
}

impl StrategyCensus {
    /// Builds the census of a population.
    pub fn of(population: &Population) -> Self {
        let entries = population
            .census()
            .into_iter()
            .map(|e| (e.representative, e.count))
            .collect();
        StrategyCensus {
            entries,
            total: population.num_ssets(),
        }
    }

    /// Number of distinct strategies.
    pub fn distinct(&self) -> usize {
        self.entries.len()
    }

    /// The dominant strategy and its population share.
    pub fn dominant(&self) -> Option<(&StrategyKind, f64)> {
        self.entries
            .first()
            .map(|(s, count)| (s, *count as f64 / self.total.max(1) as f64))
    }

    /// Shannon diversity (in nats) of the strategy distribution: 0 for a
    /// monomorphic population, `ln(total)` for all-distinct strategies.
    pub fn shannon_diversity(&self) -> f64 {
        let total = self.total.max(1) as f64;
        -self
            .entries
            .iter()
            .map(|(_, count)| {
                let p = *count as f64 / total;
                if p > 0.0 {
                    p * p.ln()
                } else {
                    0.0
                }
            })
            .sum::<f64>()
    }
}

/// A census keyed by the classic named strategies.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct NamedCensus {
    /// `(short name, fraction of the population)` for every named strategy
    /// present, sorted by descending fraction.
    pub fractions: Vec<(String, f64)>,
    /// Fraction of the population whose strategy matches no classic.
    pub other: f64,
}

impl NamedCensus {
    /// Builds the named census of a population.
    pub fn of(population: &Population) -> Self {
        let total = population.num_ssets() as f64;
        let mut counts: Vec<(String, usize)> = Vec::new();
        let mut other = 0usize;
        for strategy in population.strategies() {
            let named = strategy.as_pure().and_then(NamedStrategy::identify);
            match named {
                Some(n) => {
                    let name = n.short_name().to_string();
                    if let Some(entry) = counts.iter_mut().find(|(label, _)| *label == name) {
                        entry.1 += 1;
                    } else {
                        counts.push((name, 1));
                    }
                }
                None => other += 1,
            }
        }
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        NamedCensus {
            fractions: counts
                .into_iter()
                .map(|(name, count)| (name, count as f64 / total))
                .collect(),
            other: other as f64 / total,
        }
    }

    /// The fraction of the population holding a given named strategy.
    pub fn fraction_of(&self, named: NamedStrategy) -> f64 {
        self.fractions
            .iter()
            .find(|(name, _)| name == named.short_name())
            .map(|(_, fraction)| *fraction)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egd_core::state::MemoryDepth;
    use egd_core::strategy::{PureStrategy, StrategySpace};

    fn population_with(counts: &[(NamedStrategy, usize)]) -> Population {
        let mut strategies = Vec::new();
        for (named, count) in counts {
            for _ in 0..*count {
                strategies.push(StrategyKind::Pure(named.to_pure()));
            }
        }
        Population::from_strategies(StrategySpace::pure(MemoryDepth::ONE), 1, strategies).unwrap()
    }

    #[test]
    fn strategy_census_counts() {
        let p = population_with(&[
            (NamedStrategy::WinStayLoseShift, 6),
            (NamedStrategy::AlwaysDefect, 3),
            (NamedStrategy::TitForTat, 1),
        ]);
        let census = StrategyCensus::of(&p);
        assert_eq!(census.total, 10);
        assert_eq!(census.distinct(), 3);
        let (dominant, fraction) = census.dominant().unwrap();
        assert_eq!(
            dominant.as_pure().unwrap(),
            &NamedStrategy::WinStayLoseShift.to_pure()
        );
        assert!((fraction - 0.6).abs() < 1e-12);
    }

    #[test]
    fn shannon_diversity_limits() {
        let mono = population_with(&[(NamedStrategy::AlwaysDefect, 8)]);
        assert!(StrategyCensus::of(&mono).shannon_diversity() < 1e-12);

        let diverse = Population::random(StrategySpace::pure(MemoryDepth::SIX), 16, 1, 3).unwrap();
        let diversity = StrategyCensus::of(&diverse).shannon_diversity();
        assert!((diversity - (16f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn named_census_identifies_classics() {
        let p = population_with(&[
            (NamedStrategy::WinStayLoseShift, 17),
            (NamedStrategy::TitForTat, 2),
            (NamedStrategy::AlwaysCooperate, 1),
        ]);
        let census = NamedCensus::of(&p);
        assert!((census.fraction_of(NamedStrategy::WinStayLoseShift) - 0.85).abs() < 1e-12);
        assert!((census.fraction_of(NamedStrategy::TitForTat) - 0.1).abs() < 1e-12);
        assert_eq!(census.fraction_of(NamedStrategy::GrimTrigger), 0.0);
        assert_eq!(census.other, 0.0);
        // Sorted by descending fraction.
        assert_eq!(census.fractions[0].0, "WSLS");
    }

    #[test]
    fn named_census_counts_unknown_strategies_as_other() {
        let odd =
            StrategyKind::Pure(PureStrategy::from_bitstring(MemoryDepth::ONE, "1101").unwrap());
        let strategies = vec![
            odd.clone(),
            odd,
            StrategyKind::Pure(NamedStrategy::AlwaysDefect.to_pure()),
            StrategyKind::Pure(NamedStrategy::AlwaysDefect.to_pure()),
        ];
        let p = Population::from_strategies(StrategySpace::pure(MemoryDepth::ONE), 1, strategies)
            .unwrap();
        let census = NamedCensus::of(&p);
        assert!((census.other - 0.5).abs() < 1e-12);
        assert!((census.fraction_of(NamedStrategy::AlwaysDefect) - 0.5).abs() < 1e-12);
    }
}
