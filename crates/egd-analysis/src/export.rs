//! Plain-text export of experiment results (CSV and aligned tables).
//!
//! The benchmark binaries print the same rows and series the paper reports;
//! this module provides the small formatting layer they share.

use serde::{Deserialize, Serialize};

/// A simple column-oriented table that can be rendered as CSV or as an
/// aligned text table.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CsvTable {
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each row must have one cell per header).
    pub rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Creates a table with the given headers.
    pub fn new(headers: &[&str]) -> Self {
        CsvTable {
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row, padding or truncating to the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&escape_row(&self.headers));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&escape_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as an aligned text table for terminal output.
    pub fn to_aligned(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let render = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = render(&self.headers);
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1))),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render(row));
            out.push('\n');
        }
        out
    }
}

fn escape_cell(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

fn escape_row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| escape_cell(c))
        .collect::<Vec<_>>()
        .join(",")
}

/// Renders `(x, y)` series as a two-column CSV string.
pub fn to_csv(header_x: &str, header_y: &str, series: &[(f64, f64)]) -> String {
    let mut table = CsvTable::new(&[header_x, header_y]);
    for (x, y) in series {
        table.push_row(vec![format!("{x}"), format!("{y}")]);
    }
    table.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip_shape() {
        let mut table = CsvTable::new(&["processors", "efficiency"]);
        table.push_row(vec!["1024".to_string(), "99.7".to_string()]);
        table.push_row(vec!["2048".to_string(), "99.5".to_string()]);
        let csv = table.to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "processors,efficiency");
        assert_eq!(lines[1], "1024,99.7");
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn cells_with_commas_are_quoted() {
        let mut table = CsvTable::new(&["name", "value"]);
        table.push_row(vec!["a,b".to_string(), "say \"hi\"".to_string()]);
        let csv = table.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn rows_are_padded_to_header_width() {
        let mut table = CsvTable::new(&["a", "b", "c"]);
        table.push_row(vec!["1".to_string()]);
        assert_eq!(table.rows[0].len(), 3);
    }

    #[test]
    fn aligned_rendering_contains_all_cells() {
        let mut table = CsvTable::new(&["memory", "runtime"]);
        table.push_row(vec!["1".to_string(), "12.5".to_string()]);
        table.push_row(vec!["6".to_string(), "220.1".to_string()]);
        let text = table.to_aligned();
        assert!(text.contains("memory"));
        assert!(text.contains("220.1"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn series_export() {
        let csv = to_csv("x", "y", &[(1.0, 2.0), (3.0, 4.5)]);
        assert!(csv.starts_with("x,y\n"));
        assert!(csv.contains("3,4.5"));
    }
}
