//! Lloyd k-means clustering of strategy genomes.
//!
//! The paper's Fig. 2 displays the population's strategies as a bitmap (one
//! row per SSet, one column per state) clustered with Lloyd k-means so that
//! prevalent strategies stand out as solid blocks. This module reproduces
//! that pipeline: strategies are embedded as 0/1 (or probability) vectors,
//! clustered, and reported with per-cluster sizes and centroids.

use egd_core::error::{EgdError, EgdResult};
use egd_core::population::Population;
use egd_core::state::StateIndex;
use egd_core::strategy::{Strategy, StrategyKind};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_pcg::Pcg64Mcg;
use serde::{Deserialize, Serialize};

/// Result of a k-means clustering run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansResult {
    /// Cluster index assigned to every input point.
    pub assignments: Vec<usize>,
    /// Cluster centroids (same dimensionality as the input points).
    pub centroids: Vec<Vec<f64>>,
    /// Number of points per cluster.
    pub sizes: Vec<usize>,
    /// Sum of squared distances of points to their centroid.
    pub inertia: f64,
    /// Number of Lloyd iterations executed.
    pub iterations: usize,
}

impl KMeansResult {
    /// Indices of the clusters ordered by descending size.
    pub fn clusters_by_size(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.sizes.len()).collect();
        order.sort_by(|&a, &b| self.sizes[b].cmp(&self.sizes[a]));
        order
    }

    /// The fraction of points in the largest cluster.
    pub fn dominant_fraction(&self) -> f64 {
        let total: usize = self.sizes.iter().sum();
        if total == 0 {
            return 0.0;
        }
        *self.sizes.iter().max().unwrap_or(&0) as f64 / total as f64
    }

    /// Rows of all points permuted so that members of the same cluster are
    /// adjacent (largest cluster first) — the ordering used to draw Fig. 2b.
    pub fn clustered_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.assignments.len());
        for cluster in self.clusters_by_size() {
            for (point, &assignment) in self.assignments.iter().enumerate() {
                if assignment == cluster {
                    order.push(point);
                }
            }
        }
        order
    }
}

/// Lloyd k-means with deterministic seeding.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeans {
    /// Number of clusters.
    pub k: usize,
    /// Maximum number of Lloyd iterations.
    pub max_iterations: usize,
    /// Seed for the initial centroid selection.
    pub seed: u64,
}

impl KMeans {
    /// Creates a k-means configuration.
    pub fn new(k: usize, max_iterations: usize, seed: u64) -> EgdResult<Self> {
        if k == 0 {
            return Err(EgdError::InvalidConfig {
                reason: "k must be at least 1".to_string(),
            });
        }
        if max_iterations == 0 {
            return Err(EgdError::InvalidConfig {
                reason: "max_iterations must be at least 1".to_string(),
            });
        }
        Ok(KMeans {
            k,
            max_iterations,
            seed,
        })
    }

    /// Clusters a set of points with Lloyd's algorithm.
    pub fn cluster(&self, points: &[Vec<f64>]) -> EgdResult<KMeansResult> {
        if points.is_empty() {
            return Err(EgdError::InvalidConfig {
                reason: "cannot cluster an empty point set".to_string(),
            });
        }
        let dim = points[0].len();
        if points.iter().any(|p| p.len() != dim) {
            return Err(EgdError::InvalidConfig {
                reason: "all points must have the same dimensionality".to_string(),
            });
        }
        let k = self.k.min(points.len());

        // Forgy initialisation: k distinct random points become centroids.
        // The shuffled order is scanned for pairwise-distinct points first so
        // that duplicated strategies (common in converged populations) do not
        // collapse several initial centroids onto one point; only when fewer
        // than k distinct points exist are duplicates used to fill up.
        let mut rng = Pcg64Mcg::seed_from_u64(self.seed);
        let mut indices: Vec<usize> = (0..points.len()).collect();
        indices.shuffle(&mut rng);
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
        for &i in &indices {
            if centroids.len() == k {
                break;
            }
            if !centroids.iter().any(|c| c == &points[i]) {
                centroids.push(points[i].clone());
            }
        }
        for &i in &indices {
            if centroids.len() == k {
                break;
            }
            centroids.push(points[i].clone());
        }

        let mut assignments = vec![0usize; points.len()];
        let mut iterations = 0;
        for _ in 0..self.max_iterations {
            iterations += 1;
            // Assignment step.
            let mut changed = false;
            for (i, point) in points.iter().enumerate() {
                let nearest = Self::nearest_centroid(point, &centroids);
                if assignments[i] != nearest {
                    assignments[i] = nearest;
                    changed = true;
                }
            }
            // Update step.
            let mut sums = vec![vec![0.0; dim]; k];
            let mut counts = vec![0usize; k];
            for (point, &assignment) in points.iter().zip(&assignments) {
                counts[assignment] += 1;
                for (s, &x) in sums[assignment].iter_mut().zip(point) {
                    *s += x;
                }
            }
            for (cluster, sum) in sums.into_iter().enumerate() {
                if counts[cluster] > 0 {
                    centroids[cluster] = sum
                        .into_iter()
                        .map(|s| s / counts[cluster] as f64)
                        .collect();
                }
                // Empty clusters keep their previous centroid.
            }
            if !changed {
                break;
            }
        }

        let mut sizes = vec![0usize; k];
        let mut inertia = 0.0;
        for (point, &assignment) in points.iter().zip(&assignments) {
            sizes[assignment] += 1;
            inertia += Self::squared_distance(point, &centroids[assignment]);
        }
        Ok(KMeansResult {
            assignments,
            centroids,
            sizes,
            inertia,
            iterations,
        })
    }

    /// Clusters the strategies of a population (the Fig. 2 pipeline):
    /// each strategy becomes its per-state cooperation-probability vector.
    pub fn cluster_population(&self, population: &Population) -> EgdResult<KMeansResult> {
        let points: Vec<Vec<f64>> = population
            .strategies()
            .iter()
            .map(strategy_embedding)
            .collect();
        self.cluster(&points)
    }

    fn nearest_centroid(point: &[f64], centroids: &[Vec<f64>]) -> usize {
        let mut best = 0;
        let mut best_distance = f64::INFINITY;
        for (i, centroid) in centroids.iter().enumerate() {
            let d = Self::squared_distance(point, centroid);
            if d < best_distance {
                best_distance = d;
                best = i;
            }
        }
        best
    }

    fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }
}

/// Embeds a strategy as its per-state cooperation-probability vector
/// (0/1 entries for pure strategies) — one row of the Fig. 2 bitmap.
pub fn strategy_embedding(strategy: &StrategyKind) -> Vec<f64> {
    let num_states = strategy.memory().num_states();
    (0..num_states as u32)
        .map(|s| strategy.cooperation_probability(StateIndex(s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use egd_core::state::MemoryDepth;
    use egd_core::strategy::{NamedStrategy, StrategySpace};

    #[test]
    fn config_validation() {
        assert!(KMeans::new(0, 10, 1).is_err());
        assert!(KMeans::new(3, 0, 1).is_err());
        assert!(KMeans::new(3, 10, 1).is_ok());
    }

    #[test]
    fn clusters_well_separated_points() {
        // Two tight groups around (0,0,0,0) and (1,1,1,1).
        let mut points = Vec::new();
        for i in 0..10 {
            let jitter = i as f64 * 0.001;
            points.push(vec![jitter, 0.0, jitter, 0.0]);
            points.push(vec![1.0 - jitter, 1.0, 1.0, 1.0 - jitter]);
        }
        let result = KMeans::new(2, 50, 7).unwrap().cluster(&points).unwrap();
        assert_eq!(result.sizes.iter().sum::<usize>(), 20);
        assert_eq!(result.sizes.len(), 2);
        assert_eq!(*result.sizes.iter().max().unwrap(), 10);
        assert_eq!(*result.sizes.iter().min().unwrap(), 10);
        // Points 0 and 1 belong to different clusters.
        assert_ne!(result.assignments[0], result.assignments[1]);
        assert!(result.inertia < 0.1);
    }

    #[test]
    fn clustering_is_deterministic_per_seed() {
        let points: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 3) as f64, (i % 5) as f64])
            .collect();
        let a = KMeans::new(3, 100, 42).unwrap().cluster(&points).unwrap();
        let b = KMeans::new(3, 100, 42).unwrap().cluster(&points).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn k_larger_than_points_is_clamped() {
        let points = vec![vec![0.0], vec![1.0]];
        let result = KMeans::new(8, 10, 1).unwrap().cluster(&points).unwrap();
        assert_eq!(result.centroids.len(), 2);
    }

    #[test]
    fn empty_and_ragged_inputs_are_rejected() {
        let km = KMeans::new(2, 10, 1).unwrap();
        assert!(km.cluster(&[]).is_err());
        assert!(km.cluster(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn strategy_embedding_matches_bitstring() {
        let wsls = NamedStrategy::WinStayLoseShift.to_pure();
        let embedding = strategy_embedding(&StrategyKind::Pure(wsls));
        // WSLS = "0110" in move bits, so cooperation probabilities are 1,0,0,1.
        assert_eq!(embedding, vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn population_dominated_by_wsls_clusters_cleanly() {
        // 80% WSLS, 20% ALLD: the dominant cluster holds ~80% of the rows,
        // mirroring the Fig. 2b statement that 85% of SSets adopted WSLS.
        let wsls = StrategyKind::Pure(NamedStrategy::WinStayLoseShift.to_pure());
        let alld = StrategyKind::Pure(NamedStrategy::AlwaysDefect.to_pure());
        let mut strategies = vec![wsls.clone(); 40];
        strategies.extend(vec![alld.clone(); 10]);
        let population =
            Population::from_strategies(StrategySpace::pure(MemoryDepth::ONE), 1, strategies)
                .unwrap();
        let result = KMeans::new(4, 50, 3)
            .unwrap()
            .cluster_population(&population)
            .unwrap();
        assert!((result.dominant_fraction() - 0.8).abs() < 1e-9);
        // The clustered ordering puts all WSLS rows first.
        let order = result.clustered_order();
        assert_eq!(order.len(), 50);
        let first_cluster = result.assignments[order[0]];
        let first_block: Vec<usize> = order
            .iter()
            .take_while(|&&p| result.assignments[p] == first_cluster)
            .copied()
            .collect();
        assert_eq!(first_block.len(), 40);
    }

    #[test]
    fn random_memory_six_population_has_no_dominant_cluster() {
        let population =
            Population::random(StrategySpace::pure(MemoryDepth::SIX), 40, 1, 5).unwrap();
        let result = KMeans::new(5, 20, 9)
            .unwrap()
            .cluster_population(&population)
            .unwrap();
        // Random 4096-bit genomes are nearly equidistant: no cluster should
        // swallow the population.
        assert!(result.dominant_fraction() < 0.8);
        assert_eq!(result.assignments.len(), 40);
    }

    #[test]
    fn centroids_have_input_dimensionality() {
        let points: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64; 6]).collect();
        let result = KMeans::new(3, 25, 11).unwrap().cluster(&points).unwrap();
        for centroid in &result.centroids {
            assert_eq!(centroid.len(), 6);
        }
        assert!(result.iterations >= 1);
    }
}
