//! Generation time series built from simulation history records.

use egd_core::metrics::GenerationRecord;
use serde::{Deserialize, Serialize};

/// A time series of per-generation population summaries.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    records: Vec<GenerationRecord>,
}

impl TimeSeries {
    /// Builds a time series from history records (sorted by generation).
    pub fn from_records(mut records: Vec<GenerationRecord>) -> Self {
        records.sort_by_key(|r| r.generation);
        TimeSeries { records }
    }

    /// The underlying records.
    pub fn records(&self) -> &[GenerationRecord] {
        &self.records
    }

    /// Number of recorded generations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The `(generation, dominant fraction)` series — the curve that shows
    /// WSLS taking over in the validation run.
    pub fn dominant_fraction_series(&self) -> Vec<(u64, f64)> {
        self.records
            .iter()
            .map(|r| (r.generation, r.dominant_fraction))
            .collect()
    }

    /// The `(generation, mean fitness)` series.
    pub fn mean_fitness_series(&self) -> Vec<(u64, f64)> {
        self.records
            .iter()
            .map(|r| (r.generation, r.fitness.mean))
            .collect()
    }

    /// The `(generation, cooperation propensity)` series.
    pub fn cooperation_series(&self) -> Vec<(u64, f64)> {
        self.records
            .iter()
            .map(|r| (r.generation, r.cooperation_propensity))
            .collect()
    }

    /// The first generation at which the dominant fraction reached the given
    /// threshold, if any (e.g. "when did WSLS reach 2/3 of the population").
    pub fn generation_reaching_dominance(&self, threshold: f64) -> Option<u64> {
        self.records
            .iter()
            .find(|r| r.dominant_fraction >= threshold)
            .map(|r| r.generation)
    }

    /// Fraction of recorded generations in which the population changed.
    pub fn change_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.population_changed).count() as f64
            / self.records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egd_core::metrics::FitnessStats;

    fn record(generation: u64, dominant: f64, mean: f64, changed: bool) -> GenerationRecord {
        GenerationRecord {
            generation,
            fitness: FitnessStats::from_slice(&[mean]).unwrap(),
            dominant_fraction: dominant,
            distinct_strategies: 3,
            cooperation_propensity: dominant / 2.0,
            population_changed: changed,
        }
    }

    #[test]
    fn records_are_sorted_by_generation() {
        let series = TimeSeries::from_records(vec![
            record(20, 0.5, 2.0, true),
            record(10, 0.3, 1.0, false),
        ]);
        assert_eq!(series.len(), 2);
        assert!(!series.is_empty());
        assert_eq!(series.records()[0].generation, 10);
        assert_eq!(
            series.dominant_fraction_series(),
            vec![(10, 0.3), (20, 0.5)]
        );
    }

    #[test]
    fn series_extraction() {
        let series = TimeSeries::from_records(vec![
            record(0, 0.2, 1.5, false),
            record(1, 0.6, 2.5, true),
            record(2, 0.9, 3.0, true),
        ]);
        assert_eq!(series.mean_fitness_series()[2], (2, 3.0));
        assert_eq!(series.cooperation_series()[1], (1, 0.3));
        assert_eq!(series.generation_reaching_dominance(0.5), Some(1));
        assert_eq!(series.generation_reaching_dominance(0.95), None);
        assert!((series.change_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_series() {
        let series = TimeSeries::default();
        assert!(series.is_empty());
        assert_eq!(series.change_rate(), 0.0);
        assert_eq!(series.generation_reaching_dominance(0.5), None);
    }
}
