//! Speedup and parallel-efficiency arithmetic.
//!
//! Shared by the scaling harnesses and the benchmark binaries so that every
//! figure uses the same definitions: speedup is relative to the smallest
//! processor count of the study, and parallel efficiency is the percentage of
//! the ideal speedup achieved (the paper's definition in §VI-B).

use serde::{Deserialize, Serialize};

/// Speedup of a run relative to a baseline: `T_base / T`.
pub fn speedup(baseline_time: f64, time: f64) -> f64 {
    if time <= 0.0 {
        return 0.0;
    }
    baseline_time / time
}

/// Parallel efficiency in percent: achieved speedup over ideal speedup.
///
/// `baseline_processors` and `processors` define the ideal speedup
/// `processors / baseline_processors`.
pub fn parallel_efficiency(
    baseline_time: f64,
    baseline_processors: usize,
    time: f64,
    processors: usize,
) -> f64 {
    if baseline_processors == 0 || processors == 0 {
        return 0.0;
    }
    let ideal = processors as f64 / baseline_processors as f64;
    100.0 * speedup(baseline_time, time) / ideal
}

/// Weak-scaling efficiency in percent: `T_base / T` (work per processor is
/// constant, so perfect scaling keeps the runtime flat).
pub fn weak_scaling_efficiency(baseline_time: f64, time: f64) -> f64 {
    100.0 * speedup(baseline_time, time)
}

/// One point of a measured or modelled scaling study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyPoint {
    /// Processor count.
    pub processors: usize,
    /// Measured or modelled runtime in seconds.
    pub time_seconds: f64,
    /// Speedup relative to the study's baseline.
    pub speedup: f64,
    /// Parallel efficiency in percent.
    pub efficiency_percent: f64,
}

/// Builds strong-scaling points from `(processors, time)` measurements.
/// The first entry is the baseline.
pub fn strong_scaling_points(measurements: &[(usize, f64)]) -> Vec<EfficiencyPoint> {
    if measurements.is_empty() {
        return Vec::new();
    }
    let (base_p, base_t) = measurements[0];
    measurements
        .iter()
        .map(|&(processors, time_seconds)| EfficiencyPoint {
            processors,
            time_seconds,
            speedup: speedup(base_t, time_seconds),
            efficiency_percent: parallel_efficiency(base_t, base_p, time_seconds, processors),
        })
        .collect()
}

/// Builds weak-scaling points from `(processors, time)` measurements.
pub fn weak_scaling_points(measurements: &[(usize, f64)]) -> Vec<EfficiencyPoint> {
    if measurements.is_empty() {
        return Vec::new();
    }
    let (_, base_t) = measurements[0];
    measurements
        .iter()
        .map(|&(processors, time_seconds)| EfficiencyPoint {
            processors,
            time_seconds,
            speedup: speedup(base_t, time_seconds) * processors as f64 / measurements[0].0 as f64,
            efficiency_percent: weak_scaling_efficiency(base_t, time_seconds),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_basics() {
        assert_eq!(speedup(10.0, 5.0), 2.0);
        assert_eq!(speedup(10.0, 10.0), 1.0);
        assert_eq!(speedup(10.0, 0.0), 0.0);
    }

    #[test]
    fn perfect_strong_scaling_is_100_percent() {
        assert!((parallel_efficiency(16.0, 1, 1.0, 16) - 100.0).abs() < 1e-12);
        assert!((parallel_efficiency(16.0, 2, 2.0, 16) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn half_speedup_is_50_percent() {
        assert!((parallel_efficiency(16.0, 1, 2.0, 16) - 50.0).abs() < 1e-12);
        assert_eq!(parallel_efficiency(16.0, 0, 2.0, 16), 0.0);
    }

    #[test]
    fn weak_scaling_flat_runtime_is_100_percent() {
        assert!((weak_scaling_efficiency(5.0, 5.0) - 100.0).abs() < 1e-12);
        assert!((weak_scaling_efficiency(5.0, 10.0) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn strong_scaling_points_from_measurements() {
        let points = strong_scaling_points(&[(1, 100.0), (2, 50.0), (4, 30.0)]);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].efficiency_percent, 100.0);
        assert_eq!(points[1].efficiency_percent, 100.0);
        assert!((points[2].speedup - 100.0 / 30.0).abs() < 1e-12);
        assert!((points[2].efficiency_percent - 100.0 * (100.0 / 30.0) / 4.0).abs() < 1e-12);
        assert!(strong_scaling_points(&[]).is_empty());
    }

    #[test]
    fn weak_scaling_points_from_measurements() {
        let points = weak_scaling_points(&[(64, 10.0), (256, 10.5), (1024, 11.0)]);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].efficiency_percent, 100.0);
        assert!(points[1].efficiency_percent < 100.0 && points[1].efficiency_percent > 90.0);
        assert!(points[2].efficiency_percent > 90.0);
        assert!(weak_scaling_points(&[]).is_empty());
    }
}
