//! Multi-tenant Perfetto timeline export: one track per session.

use egd_obs::{chrome_trace_json, ExportOptions, SpanKind, TraceLog, TraceProcess};

/// Renders a multi-tenant run's trace as one diffable Chrome/Perfetto JSON
/// document with a **track per session**.
///
/// Session tasks record their spans (session lifetime, generations,
/// checkpoints, recoveries) on track = session id, but the executor also
/// records its own `RankTask` spans on track = *task index*, which is not a
/// session id once some sessions are rejected or parked. This export keeps
/// only the session-attributed span kinds, sorts deterministically by
/// `(track, seq, span_id)`, and emits a single `egd-serve` process whose
/// tracks render as `session 0`, `session 1`, ….
pub fn serve_timeline_json(log: &TraceLog, options: ExportOptions) -> String {
    let mut events: Vec<_> = log
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                SpanKind::Session
                    | SpanKind::Generation
                    | SpanKind::Checkpoint
                    | SpanKind::Recovery
                    | SpanKind::FaultInjected
            )
        })
        .cloned()
        .collect();
    events.sort_by_key(|e| (e.track, e.seq, e.span_id));
    chrome_trace_json(
        &[TraceProcess {
            pid: 1,
            name: "egd-serve".to_string(),
            track_label: "session".to_string(),
            events: &events,
        }],
        options,
    )
}
