//! Session and pool configuration.

use egd_core::config::SimulationConfig;
use egd_core::simulation::FitnessMode;
use serde::{Deserialize, Serialize};

/// Which engine executes a session's generations. All engines follow the
/// identical seeded trajectory, so the choice trades per-generation latency
/// against intra-session parallelism — it never changes results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EngineKind {
    /// The sequential reference engine (`egd_core::Simulation`). Lowest
    /// overhead; the right choice when many sessions share few workers.
    #[default]
    Sequential,
    /// The shared-memory engine (`egd_parallel::ParallelSimulation`) with an
    /// explicit intra-session thread count. Engine threads belong to the
    /// session (they are priced into its cost), not to the serve pool.
    Parallel {
        /// Worker threads the session's fitness phase may use.
        threads: usize,
    },
}

impl EngineKind {
    /// Stable display name for tables and reports.
    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::Sequential => "sequential",
            EngineKind::Parallel { .. } => "parallel",
        }
    }
}

/// One tenant's request: what to simulate and how.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Display name carried through reports and timelines.
    pub name: String,
    /// The full simulation configuration (population spec, seed,
    /// generations, game parameters). `simulation.generations` is the
    /// session's run length.
    pub simulation: SimulationConfig,
    /// Engine executing the generations.
    pub engine: EngineKind,
    /// How per-pair payoffs are obtained.
    pub fitness_mode: FitnessMode,
    /// Fault-injection domain this session listens on. Crash events only
    /// fire for a session when an armed `egd_fault::FaultPlan` carries the
    /// same seed, so co-scheduled tenants under different domains are
    /// isolated from each other's chaos plans.
    pub fault_domain: u64,
}

impl SessionConfig {
    /// A session named `name` over `simulation` on the sequential engine,
    /// with the fault domain defaulting to the simulation seed.
    pub fn new(name: impl Into<String>, simulation: SimulationConfig) -> Self {
        SessionConfig {
            name: name.into(),
            fault_domain: simulation.seed,
            simulation,
            engine: EngineKind::Sequential,
            fitness_mode: FitnessMode::Simulated,
        }
    }

    /// Sets the engine.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the fault-injection domain.
    pub fn with_fault_domain(mut self, domain: u64) -> Self {
        self.fault_domain = domain;
        self
    }
}

/// Shared-pool configuration: worker count, capacity budget, queue depth and
/// checkpoint cadence for every session multiplexed onto the pool.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeConfig {
    /// OS threads in the shared cooperative pool. Sessions ≫ workers is the
    /// normal regime: each session yields at every generation boundary.
    pub pool_workers: usize,
    /// Cost-accounting lanes for placement. Admission charges a session's
    /// predicted cost to the least-loaded group; the pool itself stays
    /// work-conserving (any worker runs any runnable session), so groups
    /// bound *admitted debt per lane*, not thread affinity.
    pub worker_groups: usize,
    /// Admission budget per group in predicted nanoseconds. A session whose
    /// predicted cost exceeds this even on an empty group is rejected
    /// outright; one that merely doesn't fit *now* is queued. `0` disables
    /// budgeting (admit everything).
    pub capacity_ns_per_group: u64,
    /// Maximum sessions waiting for admission; further submissions are
    /// rejected.
    pub max_queued: usize,
    /// Checkpoint every N generation boundaries (0: only on suspend).
    pub checkpoint_interval: u64,
    /// Crash-respawn attempts per session before it is marked failed.
    pub max_attempts: u32,
    /// Bounded per-session event-channel capacity; when a subscriber lags,
    /// the oldest events are dropped and counted, publishers never block.
    pub event_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            pool_workers: 4,
            worker_groups: 4,
            capacity_ns_per_group: 0,
            max_queued: 64,
            checkpoint_interval: 0,
            max_attempts: 3,
            event_capacity: 1024,
        }
    }
}

impl ServeConfig {
    /// Validates the pool shape.
    pub fn validate(&self) -> Result<(), String> {
        if self.pool_workers == 0 {
            return Err("pool_workers must be at least 1".to_string());
        }
        if self.worker_groups == 0 {
            return Err("worker_groups must be at least 1".to_string());
        }
        Ok(())
    }
}
