//! Engine abstraction: one stepping interface over the sequential and
//! shared-memory engines, with uniform checkpoint capture.

use crate::config::{EngineKind, SessionConfig};
use egd_core::dynamics::GenerationDecision;
use egd_core::error::EgdResult;
use egd_core::population::Population;
use egd_core::simulation::{Simulation, SimulationState};
use egd_parallel::simulation::ParallelSimulation;
use egd_parallel::thread_pool::ThreadConfig;

enum Inner {
    Sequential(Box<Simulation>),
    Parallel(Box<ParallelSimulation>),
}

/// A running engine instance for one session, either fresh or restored from
/// a checkpoint. Tracks `generations_with_change` itself so checkpoints
/// captured here are byte-identical across engines (the parallel engine does
/// not carry the counter natively).
pub(crate) struct EngineInstance {
    inner: Inner,
    changes: u64,
}

impl EngineInstance {
    /// Builds an engine at generation 0 (when `resume_from` is `None`) or
    /// restored byte-exactly from a checkpointed state.
    pub(crate) fn build(
        config: &SessionConfig,
        resume_from: Option<&SimulationState>,
    ) -> EgdResult<EngineInstance> {
        let changes = resume_from.map_or(0, |s| s.generations_with_change);
        let inner = match (config.engine, resume_from) {
            (EngineKind::Sequential, None) => Inner::Sequential(Box::new(
                Simulation::with_fitness_mode(config.simulation.clone(), config.fitness_mode)?,
            )),
            (EngineKind::Sequential, Some(state)) => Inner::Sequential(Box::new(
                Simulation::restore(config.simulation.clone(), state, config.fitness_mode)?,
            )),
            (EngineKind::Parallel { threads }, None) => {
                Inner::Parallel(Box::new(ParallelSimulation::with_fitness_mode(
                    config.simulation.clone(),
                    ThreadConfig::with_threads(threads),
                    config.fitness_mode,
                )?))
            }
            (EngineKind::Parallel { threads }, Some(state)) => {
                Inner::Parallel(Box::new(ParallelSimulation::restore(
                    config.simulation.clone(),
                    state,
                    ThreadConfig::with_threads(threads),
                    config.fitness_mode,
                )?))
            }
        };
        Ok(EngineInstance { inner, changes })
    }

    /// Index of the next generation to run.
    pub(crate) fn generation(&self) -> u64 {
        match &self.inner {
            Inner::Sequential(sim) => sim.generation(),
            Inner::Parallel(sim) => sim.generation(),
        }
    }

    /// The current population.
    pub(crate) fn population(&self) -> &Population {
        match &self.inner {
            Inner::Sequential(sim) => sim.population(),
            Inner::Parallel(sim) => sim.population(),
        }
    }

    /// Runs one generation.
    pub(crate) fn step(&mut self) -> EgdResult<GenerationDecision> {
        let decision = match &mut self.inner {
            Inner::Sequential(sim) => sim.step()?,
            Inner::Parallel(sim) => sim.step()?,
        };
        if decision.changes_population() {
            self.changes += 1;
        }
        Ok(decision)
    }

    /// Captures the cross-generation state at the current boundary.
    pub(crate) fn checkpoint(&self, seed: u64) -> SimulationState {
        SimulationState::capture(seed, self.generation(), self.changes, self.population())
    }
}
