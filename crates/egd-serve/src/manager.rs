//! The session manager: submission, the cooperative run loop, supervised
//! per-session crash recovery, and reporting.

use crate::admission::{Admission, AdmissionAction, AdmissionRecord};
use crate::config::{ServeConfig, SessionConfig};
use crate::engine::EngineInstance;
use crate::session::{SessionEvent, SessionHandle, SessionId, SessionShared, SessionStatus};
use egd_cluster::taskexec::{self, TaskFuture};
use egd_core::error::{EgdError, EgdResult};
use egd_core::simulation::SimulationState;
use egd_cost::CostModel;
use egd_fault::{crash_fault, injection_armed, CheckpointStore, MemoryStore};
use egd_obs::{GenerationMetrics, MetricsSnapshot, SpanKind, SpanTimer};
use serde::{Deserialize, Serialize};
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};

/// Everything a session task needs besides its own state.
struct PoolCtx {
    cfg: ServeConfig,
    admission: Arc<Admission>,
    sessions: Vec<Arc<SessionShared>>,
    store: Arc<dyn CheckpointStore>,
}

/// Multiplexes many concurrent simulation sessions onto one shared
/// cooperative worker pool.
///
/// * **Admission** prices each submitted session with the `egd-cost`
///   predictor and either admits it against a placement group's budget,
///   queues it (strict FIFO), or rejects it.
/// * **Execution** ([`run`](Self::run)) turns every admitted/queued session
///   into one cooperative future on a `taskexec` pool of
///   [`pool_workers`](ServeConfig::pool_workers) threads; sessions yield at
///   every generation boundary, so sessions ≫ workers interleave fairly.
/// * **Lifecycle**: suspend checkpoints through the [`CheckpointStore`] and
///   parks the session; [`resume`](Self::resume) re-admits it and the next
///   run restores byte-identically from `(seed, generation)`; cancel stops
///   a session at a boundary without disturbing co-tenants.
/// * **Recovery**: each session is its own fault domain — an injected crash
///   (or a panic inside the engine step) respawns that session from its
///   latest checkpoint, bounded by [`max_attempts`](ServeConfig::max_attempts),
///   while neighbours keep running.
///
/// Every session's trajectory depends only on its own `(config, seed)`;
/// co-scheduling, placement, worker count and recovery never change results.
pub struct SessionManager {
    cfg: ServeConfig,
    cost_model: CostModel,
    admission: Arc<Admission>,
    store: Arc<dyn CheckpointStore>,
    sessions: Vec<Arc<SessionShared>>,
    configs: Vec<SessionConfig>,
}

impl SessionManager {
    /// A manager with an in-memory checkpoint store.
    pub fn new(cfg: ServeConfig) -> EgdResult<Self> {
        Self::with_store(cfg, Arc::new(MemoryStore::new()))
    }

    /// A manager checkpointing through an explicit store backend.
    pub fn with_store(cfg: ServeConfig, store: Arc<dyn CheckpointStore>) -> EgdResult<Self> {
        cfg.validate()
            .map_err(|reason| EgdError::InvalidConfig { reason })?;
        let admission = Arc::new(Admission::new(
            cfg.worker_groups,
            cfg.capacity_ns_per_group,
            cfg.max_queued,
        ));
        Ok(SessionManager {
            cfg,
            cost_model: CostModel::blue_gene_like(),
            admission,
            store,
            sessions: Vec::new(),
            configs: Vec::new(),
        })
    }

    /// Replaces the cost model admission prices with.
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// The checkpoint store sessions suspend/recover through.
    pub fn store(&self) -> &Arc<dyn CheckpointStore> {
        &self.store
    }

    /// Prices `config` and submits it: the returned handle's status tells
    /// whether it was admitted, queued or rejected. Rejection is a status,
    /// not an error — the submission itself only fails on an invalid
    /// simulation configuration.
    pub fn submit(&mut self, config: SessionConfig) -> EgdResult<SessionHandle> {
        config.simulation.validate()?;
        let game = config.simulation.game()?;
        let population = config.simulation.initial_population()?;
        let per_generation_ns = egd_cost::predict::generation_weight_ns(
            &self.cost_model,
            &game,
            population.strategies(),
        )
        .max(1);
        let generations = config.simulation.generations;
        let predicted_cost_ns = per_generation_ns.saturating_mul(generations);

        let id = self.sessions.len();
        let label = format!("session-{id}:{}", config.name);
        let shared = Arc::new(SessionShared::new(
            id,
            config.name.clone(),
            generations,
            per_generation_ns,
            predicted_cost_ns,
            self.cfg.event_capacity,
            &label,
        ));
        {
            let mut state = shared.lock();
            state.metrics.run.workers = self.cfg.pool_workers as u64;
        }
        self.admission.admit(&shared, predicted_cost_ns);
        self.sessions.push(Arc::clone(&shared));
        self.configs.push(config);
        Ok(SessionHandle { shared })
    }

    /// The handle of a previously submitted session.
    pub fn handle(&self, id: SessionId) -> Option<SessionHandle> {
        self.sessions.get(id).map(|shared| SessionHandle {
            shared: Arc::clone(shared),
        })
    }

    /// Re-admits a suspended session. Its remaining generations are
    /// re-priced (a half-done session is cheaper than a fresh one), so it
    /// re-enters through the same admission gate as a new submission.
    pub fn resume(&mut self, id: SessionId) -> EgdResult<SessionStatus> {
        let shared = self
            .sessions
            .get(id)
            .ok_or_else(|| EgdError::InvalidConfig {
                reason: format!("no session with id {id}"),
            })?;
        let remaining = {
            let state = shared.lock();
            let SessionStatus::Suspended { generation } = state.status else {
                return Err(EgdError::InvalidConfig {
                    reason: format!(
                        "session {id} is {} — only suspended sessions can be resumed",
                        state.status.label()
                    ),
                });
            };
            shared
                .generations
                .saturating_sub(generation)
                .saturating_mul(shared.per_generation_ns)
        };
        shared.clear_suspend();
        self.admission.admit(shared, remaining);
        Ok(shared.lock().status.clone())
    }

    /// Runs every admitted and queued session to its next lifecycle
    /// boundary (completion, suspension, cancellation or failure) on the
    /// shared pool. Callable repeatedly: a later call picks up sessions
    /// submitted or resumed since.
    pub fn run(&mut self) -> EgdResult<ServeReport> {
        let ctx = Arc::new(PoolCtx {
            cfg: self.cfg.clone(),
            admission: Arc::clone(&self.admission),
            sessions: self.sessions.clone(),
            store: Arc::clone(&self.store),
        });
        let mut tasks: Vec<TaskFuture<()>> = Vec::new();
        for (id, shared) in self.sessions.iter().enumerate() {
            let runnable = matches!(
                shared.lock().status,
                SessionStatus::Admitted { .. } | SessionStatus::Queued
            );
            if runnable {
                tasks.push(Box::pin(session_task(
                    Arc::clone(&ctx),
                    self.configs[id].clone(),
                    Arc::clone(shared),
                )));
            }
        }
        if !tasks.is_empty() {
            let (_, fatal) = taskexec::run_tasks(self.cfg.pool_workers, tasks);
            if let Some(err) = fatal {
                // Step panics are contained inside the session bodies, so a
                // fatal here is a harness bug or a genuine admission stall —
                // surface it instead of reporting partial results as clean.
                return Err(EgdError::Communication {
                    reason: format!("serve pool failure: {err:?}"),
                });
            }
        }
        Ok(self.report())
    }

    /// The current per-session outcomes, admission audit log and merged
    /// metrics.
    pub fn report(&self) -> ServeReport {
        let mut outcomes = Vec::with_capacity(self.sessions.len());
        let mut merged = MetricsSnapshot::labelled("serve");
        merged.run.workers = self.cfg.pool_workers as u64;
        for (shared, config) in self.sessions.iter().zip(&self.configs) {
            let state = shared.lock();
            merged.merge(&state.metrics);
            outcomes.push(SessionOutcome {
                id: shared.id,
                name: shared.name.clone(),
                engine: config.engine.label().to_string(),
                status: state.status.clone(),
                group: state.group,
                predicted_cost_ns: shared.predicted_cost_ns,
                generations_done: state.generations_done,
                respawns: state.respawns,
                checkpoints: state.checkpoints,
                replayed_generations: state.replayed_generations,
                dropped_events: 0,
            });
        }
        for (outcome, shared) in outcomes.iter_mut().zip(&self.sessions) {
            outcome.dropped_events = SessionHandle {
                shared: Arc::clone(shared),
            }
            .dropped_events();
        }
        ServeReport {
            outcomes,
            group_loads: self.admission.group_loads(),
            admission_log: self.admission.log(),
            metrics: merged,
        }
    }
}

/// One session's row in the serve report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionOutcome {
    /// Session id (submission order).
    pub id: SessionId,
    /// Display name.
    pub name: String,
    /// Engine label (`sequential` / `parallel`).
    pub engine: String,
    /// Lifecycle status after the last run.
    pub status: SessionStatus,
    /// Placement group the session was (last) charged to.
    pub group: Option<usize>,
    /// Predicted full-run cost, the admission price (ns).
    pub predicted_cost_ns: u64,
    /// Completed generations.
    pub generations_done: u64,
    /// Crash respawns performed by the per-session supervisor.
    pub respawns: u32,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Generations re-executed during crash recovery (replays publish no
    /// duplicate events).
    pub replayed_generations: u64,
    /// Events lost to the bounded subscriber channel.
    pub dropped_events: u64,
}

/// Outcome of [`SessionManager::run`] / [`SessionManager::report`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Per-session outcomes in submission order.
    pub outcomes: Vec<SessionOutcome>,
    /// Admitted predicted debt currently charged per placement group (ns).
    pub group_loads: Vec<u64>,
    /// Admission decisions in order.
    pub admission_log: Vec<AdmissionRecord>,
    /// All sessions' metrics merged.
    pub metrics: MetricsSnapshot,
}

impl ServeReport {
    /// The per-session admission/placement table as GitHub-flavoured
    /// markdown (the serve-smoke CI job writes this to the step summary).
    pub fn admission_table_md(&self) -> String {
        let mut out = String::from(
            "| session | engine | predicted cost (ns) | admission | group | status | generations | respawns |\n\
             |---|---|---|---|---|---|---|---|\n",
        );
        for outcome in &self.outcomes {
            let first = self
                .admission_log
                .iter()
                .find(|r| {
                    r.session == outcome.id
                        && matches!(
                            r.action,
                            AdmissionAction::Admitted
                                | AdmissionAction::Queued
                                | AdmissionAction::Rejected
                        )
                })
                .map(|r| r.action.label())
                .unwrap_or("-");
            out.push_str(&format!(
                "| {}:{} | {} | {} | {} | {} | {} | {} | {} |\n",
                outcome.id,
                outcome.name,
                outcome.engine,
                outcome.predicted_cost_ns,
                first,
                outcome
                    .group
                    .map(|g| g.to_string())
                    .unwrap_or_else(|| "-".to_string()),
                outcome.status.label(),
                outcome.generations_done,
                outcome.respawns,
            ));
        }
        out
    }
}

/// What the admission gate resolved to for a parked task.
enum Gate {
    Proceed,
    Abort,
}

/// Resolves when the session is admitted (or will never be).
struct AdmitFuture {
    shared: Arc<SessionShared>,
}

impl Future for AdmitFuture {
    type Output = Gate;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Gate> {
        // Register the waker *before* checking status: a release that flips
        // us to admitted after the check then finds this waker, so the wake
        // is never lost.
        *self.shared.waker.lock().unwrap_or_else(|p| p.into_inner()) = Some(cx.waker().clone());
        let state = self.shared.lock();
        match state.status {
            SessionStatus::Admitted { .. } | SessionStatus::Running => Poll::Ready(Gate::Proceed),
            SessionStatus::Queued => {
                if self.shared.cancel_due(state.generations_done) {
                    Poll::Ready(Gate::Abort)
                } else {
                    Poll::Pending
                }
            }
            _ => Poll::Ready(Gate::Abort),
        }
    }
}

/// Loads the newest verified checkpoint of `id`, if any.
fn latest_state(
    store: &dyn CheckpointStore,
    id: SessionId,
    seed: u64,
) -> EgdResult<Option<SimulationState>> {
    let Some(generation) = store.latest(id)? else {
        return Ok(None);
    };
    let Some(bytes) = store.load(id, generation)? else {
        return Ok(None);
    };
    let state = SimulationState::from_bytes(&bytes)?;
    if state.seed != seed {
        return Err(EgdError::InvalidConfig {
            reason: format!(
                "checkpoint store rank {id} holds seed {} but the session runs seed {seed}",
                state.seed
            ),
        });
    }
    Ok(Some(state))
}

/// Saves the engine's boundary state; returns the serialised bytes.
fn save_checkpoint(
    store: &dyn CheckpointStore,
    shared: &SessionShared,
    engine: &EngineInstance,
    seed: u64,
) -> EgdResult<u64> {
    let state = engine.checkpoint(seed);
    let generation = state.generation;
    let bytes = state.to_bytes()?;
    let span = SpanTimer::start_on(shared.id as u32, SpanKind::Checkpoint);
    store.save(shared.id, generation, &bytes)?;
    if let Some(span) = span {
        span.finish(generation);
    }
    let mut state = shared.lock();
    state.checkpoints += 1;
    state.metrics.add_counter("checkpoints", 1);
    Ok(generation)
}

/// Marks the session failed.
fn fail(shared: &SessionShared, reason: String) {
    let mut state = shared.lock();
    state.status = SessionStatus::Failed { reason };
}

/// The cooperative body of one session: admission wait, generation loop
/// with suspend/cancel boundaries, fault-injection checks, panic-contained
/// stepping and checkpoint-based respawn.
async fn session_task(ctx: Arc<PoolCtx>, config: SessionConfig, shared: Arc<SessionShared>) {
    match (AdmitFuture {
        shared: Arc::clone(&shared),
    })
    .await
    {
        Gate::Proceed => {}
        Gate::Abort => {
            let mut state = shared.lock();
            if !state.status.is_terminal() {
                let generation = state.generations_done;
                state.status = SessionStatus::Cancelled { generation };
            }
            drop(state);
            ctx.admission.remove_queued(shared.id);
            return;
        }
    }
    shared.lock().status = SessionStatus::Running;

    let id = shared.id;
    let seed = config.simulation.seed;
    let total = config.simulation.generations;
    let session_span = SpanTimer::start_on(id as u32, SpanKind::Session);

    run_generations(&ctx, &config, &shared, seed, total).await;

    if let Some(span) = session_span {
        span.finish(id as u64);
    }
    // Epilogue: return the budget charge and admit queued tenants. Runs on
    // every exit path so a cancelled or failed session never leaks budget.
    let (group, charged) = {
        let mut state = shared.lock();
        let pair = (state.group, state.charged_ns);
        state.charged_ns = 0;
        pair
    };
    if let (Some(group), charged @ 1..) = (group, charged) {
        ctx.admission
            .release_and_admit(id, group, charged, &ctx.sessions);
    }
}

/// The generation loop proper; extracting it keeps every `return` above the
/// single epilogue in [`session_task`].
async fn run_generations(
    ctx: &PoolCtx,
    config: &SessionConfig,
    shared: &Arc<SessionShared>,
    seed: u64,
    total: u64,
) {
    let id = shared.id;
    // Fresh sessions start at generation 0; resumed or previously crashed
    // ones restore from their newest checkpoint.
    let resume_state = match latest_state(&*ctx.store, id, seed) {
        Ok(state) => state,
        Err(e) => return fail(shared, e.to_string()),
    };
    let mut engine = match EngineInstance::build(config, resume_state.as_ref()) {
        Ok(engine) => engine,
        Err(e) => return fail(shared, e.to_string()),
    };
    // Events below this boundary were already published (before a crash);
    // replayed generations regenerate identical state but stay silent, so
    // subscribers see each generation exactly once.
    let mut published_through = engine.generation();
    let mut attempts: u32 = 0;

    loop {
        let generation = engine.generation();

        if generation >= total {
            let state = engine.checkpoint(seed);
            match state.to_bytes() {
                Ok(bytes) => {
                    let mut state = shared.lock();
                    state.status = SessionStatus::Completed;
                    state.generations_done = generation;
                    state.metrics.run.generations = generation;
                    state.final_state = Some(bytes);
                }
                Err(e) => fail(shared, e.to_string()),
            }
            return;
        }

        if shared.cancel_due(generation) {
            let mut state = shared.lock();
            state.status = SessionStatus::Cancelled { generation };
            state.generations_done = generation;
            return;
        }

        if shared.suspend_due(generation) {
            if let Err(e) = save_checkpoint(&*ctx.store, shared, &engine, seed) {
                return fail(shared, e.to_string());
            }
            let mut state = shared.lock();
            state.status = SessionStatus::Suspended { generation };
            state.generations_done = generation;
            drop(state);
            shared.clear_suspend();
            return;
        }

        // The session is its own fault domain: a crash event in an armed
        // plan whose seed equals `config.fault_domain` kills this session's
        // in-memory engine — and nothing else.
        let crashed =
            injection_armed() && crash_fault(config.fault_domain, id, generation).is_some();
        let step = if crashed {
            None
        } else {
            let span = SpanTimer::start_on(id as u32, SpanKind::Generation);
            let result = catch_unwind(AssertUnwindSafe(|| engine.step()));
            if let Some(span) = span {
                span.finish(generation);
            }
            Some(result)
        };

        match step {
            // Injected crash or a panic inside the engine step: the
            // per-session supervisor respawns from the newest checkpoint.
            None | Some(Err(_)) => {
                let why = match step {
                    Some(Err(payload)) => format!(
                        "engine panicked at generation {generation}: {}",
                        taskexec::panic_message(&*payload)
                    ),
                    _ => format!("injected crash at generation {generation}"),
                };
                attempts += 1;
                if attempts > ctx.cfg.max_attempts {
                    return fail(shared, format!("{why} ({attempts} attempts, giving up)"));
                }
                let span = SpanTimer::start_on(id as u32, SpanKind::Recovery);
                let resume = match latest_state(&*ctx.store, id, seed) {
                    Ok(state) => state,
                    Err(e) => return fail(shared, e.to_string()),
                };
                let resumed_generation = resume.as_ref().map_or(0, |s| s.generation);
                engine = match EngineInstance::build(config, resume.as_ref()) {
                    Ok(engine) => engine,
                    Err(e) => return fail(shared, e.to_string()),
                };
                if let Some(span) = span {
                    span.finish(resumed_generation);
                }
                let mut state = shared.lock();
                state.respawns += 1;
                state.replayed_generations += generation - resumed_generation;
                state.metrics.add_counter("respawns", 1);
                state
                    .metrics
                    .add_counter("replayed_generations", generation - resumed_generation);
            }
            Some(Ok(Err(e))) => {
                // A deterministic engine error is not crash-like: retrying
                // would fail identically, so the session fails immediately.
                return fail(
                    shared,
                    format!("engine error at generation {generation}: {e}"),
                );
            }
            Some(Ok(Ok(decision))) => {
                let boundary = engine.generation();
                if generation >= published_through {
                    let population = engine.population();
                    let census = population.census();
                    let (_, dominant_fraction) = population.dominant_strategy();
                    shared.events.publish(SessionEvent {
                        generation,
                        distinct_strategies: census.len(),
                        dominant_fraction,
                        cooperation: population.mean_cooperation_propensity(),
                        changed: decision.changes_population(),
                    });
                    published_through = generation + 1;
                    let mut state = shared.lock();
                    state.generations_done = boundary;
                    state.metrics.record_generation(GenerationMetrics {
                        generation,
                        items: population.num_ssets() as u64,
                        steals: 0,
                        busy_ns: 0,
                        compute_us: 0.0,
                        comm_us: 0.0,
                        changed: decision.changes_population(),
                    });
                } else {
                    let mut state = shared.lock();
                    state.generations_done = state.generations_done.max(boundary);
                }
                if ctx.cfg.checkpoint_interval > 0
                    && boundary.is_multiple_of(ctx.cfg.checkpoint_interval)
                    && boundary < total
                {
                    if let Err(e) = save_checkpoint(&*ctx.store, shared, &engine, seed) {
                        return fail(shared, e.to_string());
                    }
                }
            }
        }

        // The cooperative heart of multiplexing: give the worker back after
        // every generation so sessions ≫ workers share the pool fairly.
        taskexec::yield_now().await;
    }
}
