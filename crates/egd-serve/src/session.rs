//! Session lifecycle state, control handles and the bounded event channel.

use egd_obs::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::task::Waker;

/// Stable identifier of a session within one [`SessionManager`]
/// (submission order, starting at 0). Doubles as the checkpoint-store rank
/// and the timeline track.
///
/// [`SessionManager`]: crate::SessionManager
pub type SessionId = usize;

/// Where a session is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionStatus {
    /// Waiting for admission: it fits an empty group but not the current
    /// load. Admitted in submission order as running sessions release
    /// budget (strict FIFO — no queue-jumping).
    Queued,
    /// Admitted and charged to a placement group; runs at the next
    /// [`SessionManager::run`](crate::SessionManager::run).
    Admitted {
        /// The placement group the predicted cost is charged to.
        group: usize,
    },
    /// Refused at submission: over the per-group capacity budget even on an
    /// empty group, or the wait queue is full.
    Rejected,
    /// Currently executing generations on the pool.
    Running,
    /// Suspended at a generation boundary; its checkpoint is in the store
    /// and its budget charge has been released. `resume` re-admits it.
    Suspended {
        /// The boundary the checkpoint was taken at (next generation to run).
        generation: u64,
    },
    /// Cancelled at a generation boundary; the pool keeps running every
    /// other tenant.
    Cancelled {
        /// The boundary at which cancellation took effect.
        generation: u64,
    },
    /// Ran every configured generation.
    Completed,
    /// Crashed more times than `max_attempts` or hit a non-recoverable
    /// engine error.
    Failed {
        /// Why the session stopped.
        reason: String,
    },
}

impl SessionStatus {
    /// Short display name for tables.
    pub fn label(&self) -> &'static str {
        match self {
            SessionStatus::Queued => "queued",
            SessionStatus::Admitted { .. } => "admitted",
            SessionStatus::Rejected => "rejected",
            SessionStatus::Running => "running",
            SessionStatus::Suspended { .. } => "suspended",
            SessionStatus::Cancelled { .. } => "cancelled",
            SessionStatus::Completed => "completed",
            SessionStatus::Failed { .. } => "failed",
        }
    }

    /// Whether the session can still make progress in a future `run`.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            SessionStatus::Rejected
                | SessionStatus::Cancelled { .. }
                | SessionStatus::Completed
                | SessionStatus::Failed { .. }
        )
    }
}

/// One per-generation progress event streamed to subscribers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionEvent {
    /// Generation index this event describes (0-based).
    pub generation: u64,
    /// Distinct strategies in the population after the generation.
    pub distinct_strategies: usize,
    /// Fraction of SSets holding the dominant strategy.
    pub dominant_fraction: f64,
    /// Mean cooperation propensity of the population.
    pub cooperation: f64,
    /// Whether the Nature Agent changed the population.
    pub changed: bool,
}

/// Bounded drop-oldest event queue: publishers never block, a lagging
/// subscriber loses the *oldest* events and the loss is counted.
#[derive(Debug)]
pub(crate) struct EventQueue {
    queue: Mutex<VecDeque<SessionEvent>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl EventQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        EventQueue {
            queue: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    pub(crate) fn publish(&self, event: SessionEvent) {
        let mut queue = self.queue.lock().unwrap_or_else(|p| p.into_inner());
        if queue.len() >= self.capacity {
            queue.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        queue.push_back(event);
    }

    fn drain(&self) -> Vec<SessionEvent> {
        let mut queue = self.queue.lock().unwrap_or_else(|p| p.into_inner());
        queue.drain(..).collect()
    }

    fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Mutable bookkeeping under the session's lock.
#[derive(Debug)]
pub(crate) struct SessionState {
    pub(crate) status: SessionStatus,
    /// Predicted-cost nanoseconds currently charged to `group` (0 when not
    /// admitted/running).
    pub(crate) charged_ns: u64,
    /// Group the charge is against (meaningful while `charged_ns > 0`, and
    /// kept after completion for the placement report).
    pub(crate) group: Option<usize>,
    pub(crate) respawns: u32,
    pub(crate) checkpoints: u64,
    pub(crate) replayed_generations: u64,
    pub(crate) generations_done: u64,
    /// Serialised final `SimulationState` once terminal (completed sessions
    /// only) — the byte-exact "output" goldens compare.
    pub(crate) final_state: Option<Vec<u8>>,
    pub(crate) metrics: MetricsSnapshot,
}

/// State shared between a session's pool task, its [`SessionHandle`] and the
/// manager.
#[derive(Debug)]
pub(crate) struct SessionShared {
    pub(crate) id: SessionId,
    pub(crate) name: String,
    /// Total generations the session is configured to run.
    pub(crate) generations: u64,
    /// Predicted cost of one generation (ns).
    pub(crate) per_generation_ns: u64,
    /// Predicted cost of the full configured run (ns).
    pub(crate) predicted_cost_ns: u64,
    pub(crate) state: Mutex<SessionState>,
    /// Suspend at the first boundary `>= suspend_at` (`u64::MAX`: never).
    pub(crate) suspend_at: AtomicU64,
    /// Cancel at the first boundary `>= cancel_at` (`u64::MAX`: never).
    pub(crate) cancel_at: AtomicU64,
    pub(crate) cancel_requested: AtomicBool,
    pub(crate) suspend_requested: AtomicBool,
    /// Waker of the queued session task parked on admission.
    pub(crate) waker: Mutex<Option<Waker>>,
    pub(crate) events: EventQueue,
}

impl SessionShared {
    pub(crate) fn new(
        id: SessionId,
        name: String,
        generations: u64,
        per_generation_ns: u64,
        predicted_cost_ns: u64,
        event_capacity: usize,
        label: &str,
    ) -> Self {
        SessionShared {
            id,
            name,
            generations,
            per_generation_ns,
            predicted_cost_ns,
            state: Mutex::new(SessionState {
                status: SessionStatus::Queued,
                charged_ns: 0,
                group: None,
                respawns: 0,
                checkpoints: 0,
                replayed_generations: 0,
                generations_done: 0,
                final_state: None,
                metrics: MetricsSnapshot::labelled(label),
            }),
            suspend_at: AtomicU64::new(u64::MAX),
            cancel_at: AtomicU64::new(u64::MAX),
            cancel_requested: AtomicBool::new(false),
            suspend_requested: AtomicBool::new(false),
            waker: Mutex::new(None),
            events: EventQueue::new(event_capacity),
        }
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, SessionState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Whether the boundary `generation` triggers cancellation.
    pub(crate) fn cancel_due(&self, generation: u64) -> bool {
        self.cancel_requested.load(Ordering::Acquire)
            || generation >= self.cancel_at.load(Ordering::Acquire)
    }

    /// Whether the boundary `generation` triggers suspension.
    pub(crate) fn suspend_due(&self, generation: u64) -> bool {
        self.suspend_requested.load(Ordering::Acquire)
            || generation >= self.suspend_at.load(Ordering::Acquire)
    }

    /// Clears suspend triggers so a later resume is not instantly
    /// re-suspended.
    pub(crate) fn clear_suspend(&self) {
        self.suspend_requested.store(false, Ordering::Release);
        self.suspend_at.store(u64::MAX, Ordering::Release);
    }

    pub(crate) fn wake(&self) {
        let waker = self.waker.lock().unwrap_or_else(|p| p.into_inner()).take();
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

/// A tenant's view of one submitted session: status, control (suspend /
/// cancel / deterministic triggers) and the event subscription.
#[derive(Debug, Clone)]
pub struct SessionHandle {
    pub(crate) shared: Arc<SessionShared>,
}

impl SessionHandle {
    /// The session's id (submission order).
    pub fn id(&self) -> SessionId {
        self.shared.id
    }

    /// The session's display name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// Predicted cost of the full run in nanoseconds (the admission price).
    pub fn predicted_cost_ns(&self) -> u64 {
        self.shared.predicted_cost_ns
    }

    /// Current lifecycle status.
    pub fn status(&self) -> SessionStatus {
        self.shared.lock().status.clone()
    }

    /// Completed generations so far.
    pub fn generations_done(&self) -> u64 {
        self.shared.lock().generations_done
    }

    /// Requests suspension at the next generation boundary. Takes effect
    /// cooperatively; the session checkpoints, releases its budget charge
    /// and parks until [`SessionManager::resume`](crate::SessionManager::resume).
    pub fn suspend(&self) {
        self.shared.suspend_requested.store(true, Ordering::Release);
    }

    /// Requests suspension at the first boundary `>= generation` — the
    /// deterministic variant tests use to cut a run at an exact point.
    pub fn suspend_at(&self, generation: u64) {
        self.shared.suspend_at.store(generation, Ordering::Release);
    }

    /// Requests cancellation at the next generation boundary.
    pub fn cancel(&self) {
        self.shared.cancel_requested.store(true, Ordering::Release);
        self.shared.wake();
    }

    /// Requests cancellation at the first boundary `>= generation`.
    pub fn cancel_at(&self, generation: u64) {
        self.shared.cancel_at.store(generation, Ordering::Release);
    }

    /// Drains the events published since the last drain (oldest first).
    pub fn drain_events(&self) -> Vec<SessionEvent> {
        self.shared.events.drain()
    }

    /// Events lost to the bounded channel so far.
    pub fn dropped_events(&self) -> u64 {
        self.shared.events.dropped()
    }

    /// The per-session metrics snapshot accumulated so far.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.lock().metrics.clone()
    }

    /// The serialised final `SimulationState` of a completed session — the
    /// byte-exact output the goldens compare against a solo run.
    pub fn final_state_bytes(&self) -> Option<Vec<u8>> {
        self.shared.lock().final_state.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(generation: u64) -> SessionEvent {
        SessionEvent {
            generation,
            distinct_strategies: 1,
            dominant_fraction: 1.0,
            cooperation: 0.5,
            changed: false,
        }
    }

    #[test]
    fn bounded_queue_drops_oldest_and_counts() {
        let queue = EventQueue::new(3);
        for g in 0..5 {
            queue.publish(event(g));
        }
        assert_eq!(queue.dropped(), 2);
        let drained = queue.drain();
        assert_eq!(
            drained.iter().map(|e| e.generation).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert!(queue.drain().is_empty());
    }

    #[test]
    fn status_labels_and_terminality() {
        assert_eq!(SessionStatus::Queued.label(), "queued");
        assert!(!SessionStatus::Queued.is_terminal());
        assert!(!SessionStatus::Suspended { generation: 3 }.is_terminal());
        assert!(SessionStatus::Completed.is_terminal());
        assert!(SessionStatus::Rejected.is_terminal());
        assert!(SessionStatus::Failed {
            reason: "x".to_string()
        }
        .is_terminal());
    }
}
