//! Multi-tenant simulation serving: many concurrent sessions multiplexed
//! onto one shared cooperative scheduler pool.
//!
//! The paper's engines run one simulation per process; `egd-serve` turns
//! them into a *service*. A [`SessionManager`] accepts [`SessionConfig`]s
//! (engine choice, seed, generations, population spec), prices each with
//! the `egd-cost` predictor for **admission and placement** (rejecting or
//! queueing work beyond a configurable capacity budget, placing admitted
//! sessions on the least-loaded group), and runs admitted sessions
//! **cooperatively** over the `taskexec` executor — sessions yield at every
//! generation boundary, so many more sessions than workers interleave
//! fairly while streaming per-generation census and cooperation metrics
//! through a bounded subscriber channel.
//!
//! Sessions can be **suspended** (checkpointing through any
//! `egd_fault::CheckpointStore`), **resumed** byte-identically from
//! `(seed, generation)`, or **cancelled** without disturbing co-scheduled
//! tenants; a **crashed session is respawned** from its latest checkpoint
//! by the supervised-recovery pattern, inside its own fault domain. The
//! guarantee under test: a session's output is byte-identical whether it
//! runs alone or co-scheduled with dozens of tenants, across suspension,
//! resumption and injected crashes.
//!
//! Observability rides along: every session carries its own
//! `egd_obs::MetricsSnapshot` and span timeline, and a multi-tenant run
//! exports one diffable Perfetto timeline with a track per session via
//! [`serve_timeline_json`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod config;
mod engine;
mod manager;
mod session;
mod timeline;

pub use admission::{AdmissionAction, AdmissionRecord};
pub use config::{EngineKind, ServeConfig, SessionConfig};
pub use manager::{ServeReport, SessionManager, SessionOutcome};
pub use session::{SessionEvent, SessionHandle, SessionId, SessionStatus};
pub use timeline::serve_timeline_json;
