//! Cost-priced admission and placement.
//!
//! Placement groups are *cost-accounting lanes* over the physically shared
//! pool: admission charges a session's predicted cost (per-generation price
//! × generations remaining) to the least-loaded group, and the per-group
//! budget bounds how much admitted debt a lane can hold. The pool itself
//! stays work-conserving — any worker polls any runnable session — so a
//! group caps *admission*, not thread affinity, exactly like a capacity
//! scheduler in front of one shared cluster.
//!
//! Queueing is strict FIFO: when a running or suspending session releases
//! its charge, the queue head is re-priced and admitted if it now fits;
//! admission stops at the first head that does not fit, so a small session
//! can never overtake a big one that has been waiting longer (no
//! starvation by queue-jumping).

use crate::session::{SessionId, SessionShared, SessionStatus};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Mutex;

/// What the admission controller decided for one session at one moment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionAction {
    /// Charged to a group at submission (or resume) time.
    Admitted,
    /// Parked in the FIFO wait queue.
    Queued,
    /// Refused: over budget even on an empty group, or the queue was full.
    Rejected,
    /// A finished/suspended/cancelled session returned its charge.
    Released,
    /// A queued session was admitted when budget freed up.
    Readmitted,
}

impl AdmissionAction {
    /// Stable display name for tables.
    pub fn label(self) -> &'static str {
        match self {
            AdmissionAction::Admitted => "admitted",
            AdmissionAction::Queued => "queued",
            AdmissionAction::Rejected => "rejected",
            AdmissionAction::Released => "released",
            AdmissionAction::Readmitted => "readmitted",
        }
    }
}

/// One entry of the admission audit log, in decision order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionRecord {
    /// The session the decision concerns.
    pub session: SessionId,
    /// What happened.
    pub action: AdmissionAction,
    /// Placement group involved, when the action has one.
    pub group: Option<usize>,
    /// Predicted cost (ns) the decision priced.
    pub cost_ns: u64,
}

struct AdmissionInner {
    group_load: Vec<u64>,
    queue: VecDeque<SessionId>,
    log: Vec<AdmissionRecord>,
}

/// The admission controller shared by the manager and every session task.
pub(crate) struct Admission {
    capacity_ns: u64,
    max_queued: usize,
    inner: Mutex<AdmissionInner>,
}

impl Admission {
    pub(crate) fn new(groups: usize, capacity_ns: u64, max_queued: usize) -> Self {
        Admission {
            capacity_ns,
            max_queued,
            inner: Mutex::new(AdmissionInner {
                group_load: vec![0; groups.max(1)],
                queue: VecDeque::new(),
                log: Vec::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, AdmissionInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The least-loaded group (ties to the lowest index), if `cost_ns` fits
    /// its remaining budget. Charges the group on success.
    fn place(inner: &mut AdmissionInner, capacity_ns: u64, cost_ns: u64) -> Option<usize> {
        let (group, load) = inner
            .group_load
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(i, load)| (load, i))?;
        if capacity_ns > 0 && load.saturating_add(cost_ns) > capacity_ns {
            return None;
        }
        inner.group_load[group] += cost_ns;
        Some(group)
    }

    /// Admission decision for a session entering the system (submission or
    /// resume). Updates the session's own state under its lock.
    pub(crate) fn admit(&self, shared: &SessionShared, cost_ns: u64) -> AdmissionAction {
        let mut inner = self.lock();
        let (action, group) = if self.capacity_ns > 0 && cost_ns > self.capacity_ns {
            (AdmissionAction::Rejected, None)
        } else if let Some(group) = Self::place(&mut inner, self.capacity_ns, cost_ns) {
            (AdmissionAction::Admitted, Some(group))
        } else if inner.queue.len() < self.max_queued {
            inner.queue.push_back(shared.id);
            (AdmissionAction::Queued, None)
        } else {
            (AdmissionAction::Rejected, None)
        };
        inner.log.push(AdmissionRecord {
            session: shared.id,
            action,
            group,
            cost_ns,
        });
        drop(inner);

        let mut state = shared.lock();
        match action {
            AdmissionAction::Admitted => {
                let group = group.expect("admitted sessions have a group");
                state.status = SessionStatus::Admitted { group };
                state.group = Some(group);
                state.charged_ns = cost_ns;
            }
            AdmissionAction::Queued => state.status = SessionStatus::Queued,
            _ => state.status = SessionStatus::Rejected,
        }
        action
    }

    /// Returns a finished/suspended session's charge to its group and admits
    /// queued sessions (FIFO, stopping at the first that does not fit).
    /// `sessions` is the id-indexed registry used to flip queued sessions to
    /// admitted and wake their parked tasks.
    pub(crate) fn release_and_admit(
        &self,
        from: SessionId,
        group: usize,
        charged_ns: u64,
        sessions: &[std::sync::Arc<SessionShared>],
    ) {
        let mut woken: Vec<SessionId> = Vec::new();
        {
            let mut inner = self.lock();
            let load = &mut inner.group_load[group];
            *load = load.saturating_sub(charged_ns);
            inner.log.push(AdmissionRecord {
                session: from,
                action: AdmissionAction::Released,
                group: Some(group),
                cost_ns: charged_ns,
            });
            while let Some(&head) = inner.queue.front() {
                let Some(shared) = sessions.get(head) else {
                    inner.queue.pop_front();
                    continue;
                };
                let mut state = shared.lock();
                if state.status != SessionStatus::Queued {
                    // Cancelled (or otherwise finished) while waiting.
                    drop(state);
                    inner.queue.pop_front();
                    continue;
                }
                let remaining = shared
                    .generations
                    .saturating_sub(state.generations_done)
                    .saturating_mul(shared.per_generation_ns);
                let Some(slot) = Self::place(&mut inner, self.capacity_ns, remaining) else {
                    break; // strict FIFO: nothing overtakes the head
                };
                state.status = SessionStatus::Admitted { group: slot };
                state.group = Some(slot);
                state.charged_ns = remaining;
                drop(state);
                inner.queue.pop_front();
                inner.log.push(AdmissionRecord {
                    session: head,
                    action: AdmissionAction::Readmitted,
                    group: Some(slot),
                    cost_ns: remaining,
                });
                woken.push(head);
            }
        }
        for id in woken {
            sessions[id].wake();
        }
    }

    /// Drops a session from the wait queue (cancelled while queued).
    pub(crate) fn remove_queued(&self, id: SessionId) {
        self.lock().queue.retain(|&q| q != id);
    }

    /// Snapshot of the per-group admitted debt (predicted ns).
    pub(crate) fn group_loads(&self) -> Vec<u64> {
        self.lock().group_load.clone()
    }

    /// The audit log so far, in decision order.
    pub(crate) fn log(&self) -> Vec<AdmissionRecord> {
        self.lock().log.clone()
    }
}
