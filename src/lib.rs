//! # egd — evolutionary game dynamics with extended-memory strategies
//!
//! Umbrella crate for the reproduction of Randles et al., *"Massively
//! Parallel Model of Extended Memory Use in Evolutionary Game Dynamics"*
//! (IPDPS 2013). It re-exports the workspace crates:
//!
//! * [`core`] (`egd-core`) — strategies, games, SSets, population dynamics;
//! * [`parallel`] (`egd-parallel`) — the shared-memory multi-level
//!   decomposition engine;
//! * [`sched`] (`egd-sched`) — the adaptive work-stealing scheduler with
//!   deterministic index-ordered reduction backing every parallel layer;
//! * [`cost`] (`egd-cost`) — the shared cost model and cost-guided
//!   partitioning layer every engine seeds its initial work split from;
//! * [`cluster`] (`egd-cluster`) — the simulated HPC substrate (message
//!   passing, Blue Gene machine models, distributed executor, scaling
//!   harness);
//! * [`analysis`] (`egd-analysis`) — k-means strategy clustering, censuses,
//!   cooperation metrics, efficiency arithmetic, exports;
//! * [`serve`] (`egd-serve`) — multi-tenant serving: cost-priced admission,
//!   placement and lifecycle of many concurrent simulation sessions
//!   multiplexed onto one shared cooperative worker pool.
//!
//! ## Quickstart
//!
//! ```
//! use egd::prelude::*;
//!
//! let config = SimulationConfig::builder()
//!     .memory(MemoryDepth::ONE)
//!     .num_ssets(32)
//!     .agents_per_sset(4)
//!     .generations(200)
//!     .noise(0.01)
//!     .seed(7)
//!     .build()
//!     .unwrap();
//!
//! let mut sim = ParallelSimulation::new(config, ThreadConfig::AUTO).unwrap();
//! let report = sim.run();
//! assert_eq!(report.generations_run, 200);
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `crates/egd-bench` for the per-table / per-figure reproduction harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use egd_analysis as analysis;
pub use egd_cluster as cluster;
pub use egd_core as core;
pub use egd_cost as cost;
pub use egd_parallel as parallel;
pub use egd_sched as sched;
pub use egd_serve as serve;

/// Convenience re-exports of the most commonly used types from all crates.
pub mod prelude {
    pub use egd_analysis::{
        census::{NamedCensus, StrategyCensus},
        cooperation::population_cooperation_index,
        efficiency::{parallel_efficiency, speedup},
        kmeans::{KMeans, KMeansResult},
        timeseries::TimeSeries,
    };
    pub use egd_cluster::{
        cost::{CommMode, ComputeOptimization, CostModel, OptimizationLevel, TopologyCost},
        executor::{DistributedConfig, DistributedExecutor},
        machine::MachineSpec,
        mpi::SimWorld,
        perf::{ScalingHarness, Workload},
        scheduled::{ScheduledConfig, ScheduledExecutor},
        topology::ClusterTopology,
    };
    pub use egd_core::prelude::*;
    pub use egd_parallel::{
        engine::ParallelEngine,
        kernel::{GameKernel, KernelVariant},
        simulation::ParallelSimulation,
        thread_pool::{SchedPolicy, ThreadConfig},
    };
    pub use egd_sched::{SchedStats, StressGuard};
    pub use egd_serve::{EngineKind, ServeConfig, SessionConfig, SessionManager, SessionStatus};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn umbrella_reexports_compose() {
        let tft = NamedStrategy::TitForTat.to_pure();
        let game = IpdGame::paper_defaults(MemoryDepth::ONE);
        let outcome = game.play_pure(&tft, &tft).unwrap();
        assert_eq!(outcome.fitness_a, 600.0);

        let harness = ScalingHarness::blue_gene_p();
        let workload = Workload::paper(4096, MemoryDepth::SIX, 10);
        assert!(harness.estimate(1024, &workload).unwrap().total_seconds > 0.0);
    }
}
