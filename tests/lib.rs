//! Integration-test crate for the egd workspace.
//!
//! The actual tests live in `tests/tests/*.rs`; this library is empty and
//! exists only so the directory can be a Cargo workspace member.
