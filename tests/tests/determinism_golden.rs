//! Determinism golden tests: the same `SimulationConfig` + seed must produce
//! **byte-identical** final populations through the sequential reference
//! engine and through the parallel engine at any thread count. This is the
//! executable form of `egd-parallel`'s bit-identical claim and the invariant
//! every future performance PR has to preserve.

use egd_core::prelude::*;
use egd_core::simulation::FitnessMode;
use egd_parallel::simulation::ParallelSimulation;
use egd_parallel::thread_pool::ThreadConfig;

fn golden_config(noise: f64, seed: u64) -> SimulationConfig {
    SimulationConfig::builder()
        .memory(MemoryDepth::ONE)
        .num_ssets(24)
        .agents_per_sset(3)
        .rounds_per_game(60)
        .generations(400)
        .pc_rate(0.4)
        .mutation_rate(0.1)
        .noise(noise)
        .seed(seed)
        .build()
        .unwrap()
}

/// Serialises a population to its canonical byte encoding.
fn population_bytes(sim_population: &Population) -> Vec<u8> {
    serde_json::to_vec(sim_population).expect("population serialises")
}

#[test]
fn sequential_and_parallel_runs_are_byte_identical_across_thread_counts() {
    for (noise, mode) in [
        (0.0, FitnessMode::Simulated),
        (0.03, FitnessMode::Simulated),
        (0.03, FitnessMode::ExpectedValue),
    ] {
        let config = golden_config(noise, 20_130_521);

        let mut reference = Simulation::with_fitness_mode(config.clone(), mode).unwrap();
        let reference_report = reference.run();
        let reference_bytes = population_bytes(reference.population());

        for threads in [1usize, 2, 4] {
            let mut parallel = ParallelSimulation::with_fitness_mode(
                config.clone(),
                ThreadConfig::with_threads(threads),
                mode,
            )
            .unwrap();
            let parallel_report = parallel.run();

            assert_eq!(
                parallel_report.generations_run, reference_report.generations_run,
                "noise {noise} mode {mode:?} threads {threads}: generation counts differ"
            );
            assert_eq!(
                parallel.population().strategies(),
                reference.population().strategies(),
                "noise {noise} mode {mode:?} threads {threads}: final strategies differ"
            );
            assert_eq!(
                population_bytes(parallel.population()),
                reference_bytes,
                "noise {noise} mode {mode:?} threads {threads}: serialised populations differ"
            );
        }
    }
}

#[test]
fn repeated_runs_of_the_same_seed_are_byte_identical() {
    let config = golden_config(0.02, 7);
    let mut first = ParallelSimulation::new(config.clone(), ThreadConfig::with_threads(2)).unwrap();
    first.run();
    let mut second = ParallelSimulation::new(config, ThreadConfig::with_threads(2)).unwrap();
    second.run();
    assert_eq!(
        population_bytes(first.population()),
        population_bytes(second.population())
    );
}

#[test]
fn different_seeds_diverge() {
    let mut a =
        ParallelSimulation::new(golden_config(0.02, 1), ThreadConfig::sequential()).unwrap();
    a.run();
    let mut b =
        ParallelSimulation::new(golden_config(0.02, 2), ThreadConfig::sequential()).unwrap();
    b.run();
    assert_ne!(
        population_bytes(a.population()),
        population_bytes(b.population()),
        "different seeds should produce different trajectories"
    );
}
