//! Determinism golden tests: the same `SimulationConfig` + seed must produce
//! **byte-identical** final populations through the sequential reference
//! engine and through the parallel engine at any thread count **and any
//! steal schedule** of the `egd-sched` work-stealing backend. This is the
//! executable form of `egd-parallel`'s bit-identical claim and the invariant
//! every future performance PR has to preserve. The forced-steal variant
//! runs under `egd_sched::force_steals()`, which injects skewed per-block
//! delays and shrinks scheduling blocks so steals are guaranteed to occur —
//! the schedule changes radically, the bytes must not.
//!
//! The engines seed their parallel sections from the **cost-guided initial
//! partition** (per-worker segments at the predicted-cost quantiles of the
//! pair matrix — see `egd-cost`), so every test here exercises it; the
//! mixed-population variant additionally makes the predicted weights
//! heavily skewed, moving the segment boundaries far from the uniform ones.

use egd_core::prelude::*;
use egd_core::simulation::FitnessMode;
use egd_parallel::simulation::ParallelSimulation;
use egd_parallel::thread_pool::ThreadConfig;

fn golden_config(noise: f64, seed: u64) -> SimulationConfig {
    SimulationConfig::builder()
        .memory(MemoryDepth::ONE)
        .num_ssets(24)
        .agents_per_sset(3)
        .rounds_per_game(60)
        .generations(400)
        .pc_rate(0.4)
        .mutation_rate(0.1)
        .noise(noise)
        .seed(seed)
        .build()
        .unwrap()
}

/// Serialises a population to its canonical byte encoding.
fn population_bytes(sim_population: &Population) -> Vec<u8> {
    serde_json::to_vec(sim_population).expect("population serialises")
}

#[test]
fn sequential_and_parallel_runs_are_byte_identical_across_thread_counts() {
    for (noise, mode) in [
        (0.0, FitnessMode::Simulated),
        (0.03, FitnessMode::Simulated),
        (0.03, FitnessMode::ExpectedValue),
    ] {
        let config = golden_config(noise, 20_130_521);

        let mut reference = Simulation::with_fitness_mode(config.clone(), mode).unwrap();
        let reference_report = reference.run();
        let reference_bytes = population_bytes(reference.population());

        for threads in [1usize, 2, 4, 8] {
            let mut parallel = ParallelSimulation::with_fitness_mode(
                config.clone(),
                ThreadConfig::with_threads(threads),
                mode,
            )
            .unwrap();
            let parallel_report = parallel.run();

            assert_eq!(
                parallel_report.generations_run, reference_report.generations_run,
                "noise {noise} mode {mode:?} threads {threads}: generation counts differ"
            );
            assert_eq!(
                parallel.population().strategies(),
                reference.population().strategies(),
                "noise {noise} mode {mode:?} threads {threads}: final strategies differ"
            );
            assert_eq!(
                population_bytes(parallel.population()),
                reference_bytes,
                "noise {noise} mode {mode:?} threads {threads}: serialised populations differ"
            );
        }
    }
}

#[test]
fn repeated_runs_of_the_same_seed_are_byte_identical() {
    let config = golden_config(0.02, 7);
    let mut first = ParallelSimulation::new(config.clone(), ThreadConfig::with_threads(2)).unwrap();
    first.run();
    let mut second = ParallelSimulation::new(config, ThreadConfig::with_threads(2)).unwrap();
    second.run();
    assert_eq!(
        population_bytes(first.population()),
        population_bytes(second.population())
    );
}

/// A shorter configuration for the stress variant: the injected per-block
/// delays multiply the run time, so fewer generations keep the test fast
/// while still covering hundreds of parallel sections.
fn stress_config(seed: u64) -> SimulationConfig {
    SimulationConfig::builder()
        .memory(MemoryDepth::ONE)
        .num_ssets(16)
        .agents_per_sset(2)
        .rounds_per_game(30)
        .generations(60)
        .pc_rate(0.4)
        .mutation_rate(0.1)
        .noise(0.02)
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn forced_steal_schedules_are_byte_identical_across_thread_counts() {
    let config = stress_config(20_130_521);
    let mut reference = Simulation::new(config.clone()).unwrap();
    reference.run();
    let reference_bytes = population_bytes(reference.population());

    let _stress = egd_sched::force_steals();
    for threads in [2usize, 4, 8] {
        let mut parallel =
            ParallelSimulation::new(config.clone(), ThreadConfig::with_threads(threads)).unwrap();
        let report = parallel.run();
        assert_eq!(
            population_bytes(parallel.population()),
            reference_bytes,
            "forced-steal run at {threads} threads diverged"
        );
        // The stress mode must actually change the schedule: steals happen.
        let sched = report.sched.expect("scheduler stats recorded");
        assert!(
            sched.steals > 0,
            "forced-steal mode produced no steals at {threads} threads: {sched:?}"
        );
    }
}

/// Mixed populations make the cost-guided partition *matter*: every pair
/// game is stochastic, predictions are far from uniform, and the initial
/// segment boundaries move accordingly. Under forced steals on top, the
/// schedule differs from the uniform-partition days in every way a schedule
/// can — the bytes still must not.
#[test]
fn cost_guided_partitions_stay_byte_identical_on_mixed_populations() {
    let config = SimulationConfig::builder()
        .memory(MemoryDepth::ONE)
        .family(StrategyFamily::Mixed)
        .num_ssets(16)
        .agents_per_sset(2)
        .rounds_per_game(30)
        .generations(50)
        .pc_rate(0.4)
        .mutation_rate(0.1)
        .noise(0.02)
        .seed(20_130_521)
        .build()
        .unwrap();

    let mut reference = Simulation::new(config.clone()).unwrap();
    reference.run();
    let reference_bytes = population_bytes(reference.population());

    for threads in [1usize, 2, 4, 8] {
        let mut parallel =
            ParallelSimulation::new(config.clone(), ThreadConfig::with_threads(threads)).unwrap();
        parallel.run();
        assert_eq!(
            population_bytes(parallel.population()),
            reference_bytes,
            "cost-guided mixed run at {threads} threads diverged"
        );
    }

    let _stress = egd_sched::force_steals();
    let mut stressed = ParallelSimulation::new(config, ThreadConfig::with_threads(4)).unwrap();
    let report = stressed.run();
    assert_eq!(
        population_bytes(stressed.population()),
        reference_bytes,
        "forced-steal cost-guided mixed run diverged"
    );
    assert!(
        report.sched.expect("scheduler stats recorded").steals > 0,
        "forced steals must occur on the guided partition too"
    );
}

#[test]
fn different_seeds_diverge() {
    let mut a =
        ParallelSimulation::new(golden_config(0.02, 1), ThreadConfig::sequential()).unwrap();
    a.run();
    let mut b =
        ParallelSimulation::new(golden_config(0.02, 2), ThreadConfig::sequential()).unwrap();
    b.run();
    assert_ne!(
        population_bytes(a.population()),
        population_bytes(b.population()),
        "different seeds should produce different trajectories"
    );
}
