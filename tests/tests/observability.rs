//! Observability integration tests: the `egd-obs` span/metrics/export stack
//! wired through the real engines. Three invariants are pinned here:
//!
//! 1. **Trace determinism** — virtual-time replays of the scheduler produce
//!    byte-identical Chrome-trace exports run-to-run, and a single-worker
//!    live run produces the same span *structure* (kinds, tracks, sequence)
//!    every time even though wall-clock durations differ.
//! 2. **Codec round-trip** — a drained [`egd_obs::TraceLog`] survives the
//!    vendored `serde_json` binary codec unchanged.
//! 3. **Unified snapshot** — one [`egd_obs::MetricsSnapshot`] merged from a
//!    scheduled run and a `SimWorld` collective round carries worker,
//!    traffic, and per-generation counters together (the `scale_1e4`
//!    variant of that claim runs under `--ignored`).

use egd_cluster::{ScheduledConfig, ScheduledExecutor, SimWorld};
use egd_core::prelude::*;
use egd_obs::{chrome_trace_json, validate_trace_json, ExportOptions, SpanKind, TraceProcess};
use egd_sched::{simulate_schedule_guided_recorded, simulate_schedule_recorded, Policy};

fn scheduled_config(num_ssets: usize, generations: u64) -> SimulationConfig {
    SimulationConfig::builder()
        .memory(MemoryDepth::ONE)
        .num_ssets(num_ssets)
        .agents_per_sset(2)
        .rounds_per_game(40)
        .generations(generations)
        .seed(20_130_521)
        .build()
        .expect("observability test config")
}

/// Skewed per-item costs so the replay actually steals.
fn skewed_costs(items: usize) -> Vec<u64> {
    (0..items)
        .map(|i| 1_000 + (i as u64 % 97) * 317 + if i % 13 == 0 { 25_000 } else { 0 })
        .collect()
}

#[test]
fn virtual_replay_exports_are_byte_identical() {
    let costs = skewed_costs(4_000);
    let export = || {
        let (_, adaptive) = simulate_schedule_recorded(8, &costs, Policy::Adaptive);
        let (_, guided) = simulate_schedule_guided_recorded(8, &costs, &costs, Policy::Adaptive);
        let processes = [
            TraceProcess {
                pid: 1,
                name: "replay adaptive".to_string(),
                track_label: "worker".to_string(),
                events: &adaptive,
            },
            TraceProcess {
                pid: 2,
                name: "replay cost-guided".to_string(),
                track_label: "worker".to_string(),
                events: &guided,
            },
        ];
        chrome_trace_json(&processes, ExportOptions::default())
    };
    let first = export();
    let second = export();
    assert!(!first.is_empty());
    assert_eq!(first, second, "virtual-time exports must be byte-identical");
    validate_trace_json(&first).expect("replay export is valid trace-event JSON");
}

#[test]
fn single_worker_live_trace_structure_is_deterministic() {
    let run_once = || {
        let _session = egd_obs::session_guard();
        egd_obs::enable_tracing();
        ScheduledExecutor::new(
            scheduled_config(64, 2),
            ScheduledConfig::with_ranks(64).threads(1),
        )
        .expect("single-worker executor")
        .run()
        .expect("single-worker run");
        egd_obs::disable_tracing();
        let mut log = egd_obs::collect();
        log.events.sort_by_key(|e| (e.track, e.seq, e.span_id));
        log
    };
    let first = run_once();
    let second = run_once();
    assert_eq!(first.dropped, 0);
    assert!(
        first.events.iter().any(|e| e.kind == SpanKind::Generation),
        "live trace must contain generation spans"
    );
    let shape = |log: &egd_obs::TraceLog| {
        log.events
            .iter()
            .map(|e| (e.track, e.seq, e.kind, e.payload))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        shape(&first),
        shape(&second),
        "one worker must replay the same span structure run-to-run"
    );
    // With wall-clock times zeroed the two exported streams are identical
    // bytes — the timeline is fully determined by structure.
    let export = |log: &egd_obs::TraceLog| {
        chrome_trace_json(
            &[TraceProcess {
                pid: 1,
                name: "scheduled 1w".to_string(),
                track_label: "worker".to_string(),
                events: &log.events,
            }],
            ExportOptions { zero_times: true },
        )
    };
    assert_eq!(export(&first), export(&second));
}

#[test]
fn trace_log_round_trips_through_vendored_codec() {
    let costs = skewed_costs(512);
    let (_, events) = simulate_schedule_recorded(4, &costs, Policy::Adaptive);
    assert!(!events.is_empty());
    let log = egd_obs::TraceLog { events, dropped: 3 };
    let bytes = serde_json::to_vec(&log).expect("trace log serialises");
    let back: egd_obs::TraceLog = serde_json::from_slice(&bytes).expect("trace log deserialises");
    assert_eq!(log, back);
}

/// Runs a scheduled simulation and a `SimWorld` collective round at `ranks`
/// ranks and merges both into one snapshot.
fn unified_snapshot(ranks: usize, generations: u64) -> egd_obs::MetricsSnapshot {
    let summary = ScheduledExecutor::new(
        scheduled_config(ranks, generations),
        ScheduledConfig::with_ranks(ranks).threads(4),
    )
    .expect("scheduled executor")
    .run()
    .expect("scheduled run");
    let mut snapshot = summary.metrics;

    let world = SimWorld::new(ranks).expect("sim world");
    let (_, traffic) = world
        .run(|mut comm| async move {
            let seed = if comm.rank() == 0 { Some(1u64) } else { None };
            let value = comm.broadcast(0, seed).await?;
            let sums = comm.allreduce_sum(&[value as f64]).await?;
            Ok(sums.len())
        })
        .expect("collective round");
    snapshot.traffic.merge(&traffic.snapshot().metrics());
    snapshot
}

fn assert_snapshot_is_unified(snapshot: &egd_obs::MetricsSnapshot, ranks: u64, generations: u64) {
    assert_eq!(snapshot.run.ranks, ranks);
    assert_eq!(snapshot.run.generations, generations);
    assert!(
        !snapshot.workers.is_empty(),
        "snapshot must carry the worker table"
    );
    assert_eq!(snapshot.generations.len() as u64, generations);
    assert!(snapshot.generations.iter().all(|g| g.items == ranks));
    assert!(
        snapshot.traffic.broadcasts > 0 && !snapshot.traffic.is_empty(),
        "snapshot must carry collective traffic"
    );
    assert!(
        snapshot.counter("pair_cache_hits") > 0,
        "snapshot must carry engine counters"
    );
    assert_eq!(snapshot.total_items(), ranks * generations);
}

#[test]
fn metrics_snapshot_unifies_workers_traffic_and_generations() {
    let snapshot = unified_snapshot(256, 3);
    assert_snapshot_is_unified(&snapshot, 256, 3);
}

/// The acceptance-criterion variant at 10^4 ranks. Minutes of compute, so it
/// only runs on request: `cargo test -p egd-tests -- --ignored`.
#[test]
#[ignore = "10^4-rank run: minutes of compute, run with --ignored"]
fn metrics_snapshot_unifies_at_ten_thousand_ranks() {
    let snapshot = unified_snapshot(10_000, 2);
    assert_snapshot_is_unified(&snapshot, 10_000, 2);
}
