//! Cross-crate consistency: the sequential reference, the shared-memory
//! parallel engine and the distributed executor must all produce identical
//! populations for the same configuration — regardless of thread or rank
//! count. This is the end-to-end guarantee the whole decomposition relies on.

use egd_cluster::executor::{DistributedConfig, DistributedExecutor};
use egd_core::prelude::*;
use egd_parallel::simulation::ParallelSimulation;
use egd_parallel::thread_pool::ThreadConfig;

fn config(memory: MemoryDepth, noise: f64, seed: u64, generations: u64) -> SimulationConfig {
    SimulationConfig::builder()
        .memory(memory)
        .num_ssets(18)
        .agents_per_sset(3)
        .rounds_per_game(30)
        .generations(generations)
        .noise(noise)
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn all_three_engines_agree_memory_one() {
    let cfg = config(MemoryDepth::ONE, 0.0, 101, 60);

    let mut sequential = Simulation::new(cfg.clone()).unwrap();
    sequential.run();

    let mut parallel = ParallelSimulation::new(cfg.clone(), ThreadConfig::with_threads(4)).unwrap();
    parallel.run();

    let distributed = DistributedExecutor::new(cfg, DistributedConfig::with_workers(3))
        .unwrap()
        .run()
        .unwrap();

    assert_eq!(sequential.population(), parallel.population());
    assert_eq!(sequential.population(), &distributed.population);
}

#[test]
fn all_three_engines_agree_memory_three_with_noise() {
    let cfg = config(MemoryDepth::THREE, 0.02, 202, 30);

    let mut sequential = Simulation::new(cfg.clone()).unwrap();
    sequential.run();

    let mut parallel = ParallelSimulation::new(cfg.clone(), ThreadConfig::with_threads(8)).unwrap();
    parallel.run();

    let distributed = DistributedExecutor::new(cfg, DistributedConfig::with_workers(5))
        .unwrap()
        .run()
        .unwrap();

    assert_eq!(sequential.population(), parallel.population());
    assert_eq!(sequential.population(), &distributed.population);
}

#[test]
fn expected_value_mode_is_consistent_across_engines() {
    let cfg = config(MemoryDepth::TWO, 0.05, 303, 25);

    let mut sequential =
        Simulation::with_fitness_mode(cfg.clone(), FitnessMode::ExpectedValue).unwrap();
    sequential.run();

    let mut parallel = ParallelSimulation::with_fitness_mode(
        cfg.clone(),
        ThreadConfig::with_threads(2),
        FitnessMode::ExpectedValue,
    )
    .unwrap();
    parallel.run();

    let distributed = DistributedExecutor::new(
        cfg,
        DistributedConfig::with_workers(4).fitness_mode(FitnessMode::ExpectedValue),
    )
    .unwrap()
    .run()
    .unwrap();

    assert_eq!(sequential.population(), parallel.population());
    assert_eq!(sequential.population(), &distributed.population);
}

#[test]
fn population_size_is_conserved_across_a_long_run() {
    let cfg = config(MemoryDepth::ONE, 0.01, 404, 150);
    let mut sim = Simulation::new(cfg.clone()).unwrap();
    sim.run();
    assert_eq!(sim.population().num_ssets(), cfg.num_ssets);
    assert_eq!(sim.population().total_agents(), cfg.total_agents());
    // Every strategy in the final population still has the configured memory.
    for strategy in sim.population().strategies() {
        assert_eq!(strategy.memory(), cfg.memory);
    }
}
