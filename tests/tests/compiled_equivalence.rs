//! Property-based equivalence of the compiled stochastic kernel and the
//! paper-literal game loop.
//!
//! The compiled kernel (`IpdGame::play_compiled`) claims to be **bit
//! identical** to `IpdGame::play`: same `GameOutcome` bytes (f64 payoffs
//! compared by bit pattern, not tolerance) *and* the same number of RNG
//! draws consumed, over any mix of pure / mixed / noisy pairings. These
//! properties are what keeps every determinism golden valid while the
//! engines route stochastic games through the compiled path — so they are
//! enforced here over randomly generated strategies, memory depths one and
//! two, noise levels and seeds.

use egd_core::game::compiled::{cooperation_threshold, BatchedDraws, THR_ALWAYS, THR_NEVER};
use egd_core::game::CompiledPairTable;
use egd_core::prelude::*;
use egd_core::rng::{stream, substream_state, StreamKind};
use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;
use rand::{Rng, RngCore};
use rand_pcg::Pcg64Mcg;

/// A per-state cooperation probability that hits the pure sentinels, exact
/// dyadic fractions and arbitrary interior values with similar frequency.
fn arb_prob() -> impl PropStrategy<Value = f64> {
    (0u8..5, 0.0f64..=1.0).prop_map(|(kind, p)| match kind {
        0 => 0.0,
        1 => 1.0,
        2 => 0.5,
        3 => (p * 16.0).round() / 16.0,
        _ => p,
    })
}

/// A random strategy: mixed with arbitrary per-state probabilities, which
/// subsumes pure strategies whenever every drawn probability is 0 or 1.
fn arb_strategy(memory: MemoryDepth) -> impl PropStrategy<Value = StrategyKind> {
    proptest::collection::vec((arb_prob(), any::<bool>()), memory.num_states()).prop_map(
        move |entries| {
            let force_pure = entries.iter().all(|&(_, pure)| pure);
            if force_pure {
                let moves: Vec<Move> = entries
                    .iter()
                    .map(|&(p, _)| Move::from_cooperation(p >= 0.5))
                    .collect();
                StrategyKind::Pure(PureStrategy::from_moves(memory, &moves).unwrap())
            } else {
                let probs: Vec<f64> = entries.into_iter().map(|(p, _)| p).collect();
                StrategyKind::Mixed(MixedStrategy::from_probabilities(memory, probs).unwrap())
            }
        },
    )
}

fn arb_game_inputs(
) -> impl PropStrategy<Value = (MemoryDepth, StrategyKind, StrategyKind, f64, u32, u64)> {
    (1u32..=2)
        .prop_map(|n| MemoryDepth::new(n).unwrap())
        .prop_flat_map(|memory| {
            (
                arb_strategy(memory),
                arb_strategy(memory),
                (0u8..3, 0.0f64..=1.0),
                1u32..120,
                any::<u64>(),
            )
                .prop_map(move |(a, b, (noise_kind, noise), rounds, seed)| {
                    let noise = match noise_kind {
                        0 => 0.0,
                        1 => noise,
                        _ => 0.05,
                    };
                    (memory, a, b, noise, rounds, seed)
                })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The compiled kernel reproduces the paper-literal loop byte for byte
    /// and leaves the RNG at the same stream position.
    #[test]
    fn compiled_kernel_is_bit_identical(
        (memory, a, b, noise, rounds, seed) in arb_game_inputs()
    ) {
        let game = IpdGame::new(memory, rounds, PayoffMatrix::PAPER, noise).unwrap();
        let mut slow_rng = stream(seed, StreamKind::GamePlay, 0);
        let mut fast_rng = stream(seed, StreamKind::GamePlay, 0);
        let slow = game.play(&a, &b, &mut slow_rng).unwrap();
        let ca = CompiledStrategy::compile(&a);
        let cb = CompiledStrategy::compile(&b);
        let fast = game.play_compiled(&ca, &cb, &mut fast_rng).unwrap();

        // Byte-identical outcome: payoffs compared as bit patterns.
        prop_assert_eq!(slow.fitness_a.to_bits(), fast.fitness_a.to_bits());
        prop_assert_eq!(slow.fitness_b.to_bits(), fast.fitness_b.to_bits());
        prop_assert_eq!(slow.cooperations_a, fast.cooperations_a);
        prop_assert_eq!(slow.cooperations_b, fast.cooperations_b);
        prop_assert_eq!(slow.rounds, fast.rounds);

        // Identical stream position: both engines must have consumed the
        // exact same number of draws.
        prop_assert_eq!(slow_rng.next_u64(), fast_rng.next_u64());
    }

    /// The threshold conversion agrees with `gen_bool` draw by draw: an RNG
    /// clone fed to `gen_bool(p)` gives the verdict the integer compare
    /// predicts from the same raw draw.
    #[test]
    fn threshold_agrees_with_gen_bool(p in arb_prob(), seed in any::<u64>()) {
        let mut a = stream(seed, StreamKind::Auxiliary, 1);
        let mut b = stream(seed, StreamKind::Auxiliary, 1);
        for _ in 0..64 {
            let verdict = a.gen_bool(p);
            let raw = b.next_u64();
            let thr = cooperation_threshold(p);
            let predicted = match thr {
                THR_ALWAYS => true,   // decide() would not draw; gen_bool(1.0) is always true
                THR_NEVER => false,   // likewise gen_bool(0.0) is always false
                t => (raw >> 11) < t,
            };
            prop_assert_eq!(verdict, predicted, "p = {}", p);
        }
    }

    /// Sequential pair evaluation (which routes stochastic pairs through the
    /// compiled kernel with per-generation interning) matches a direct
    /// paper-literal play on the same per-pair stream.
    #[test]
    fn pair_evaluator_matches_paper_literal_play(
        (memory, a, b, noise, rounds, seed) in arb_game_inputs()
    ) {
        let config = SimulationConfig::builder()
            .memory(memory)
            .num_ssets(4)
            .rounds_per_game(rounds)
            .noise(noise)
            .seed(seed % 1024)
            .build()
            .unwrap();
        let game = config.game().unwrap();
        let mut evaluator = PairEvaluator::new(&config, FitnessMode::Simulated).unwrap();
        for generation in 0..2u64 {
            let (to_a, to_b) = evaluator.pair_payoff(0, &a, 1, &b, generation).unwrap();
            // Pair id of (a_index = 0, b_index = 1), as the evaluator keys it.
            let pair_id = 1u64;
            let mut rng =
                egd_core::rng::substream(config.seed, StreamKind::GamePlay, pair_id, generation);
            let reference = if game.is_deterministic_for(&a, &b) {
                // Deterministic pairs go through the cycle-closing pure
                // engine (exactly like the evaluator's cacheable path).
                game.play_pure(a.as_pure().unwrap(), b.as_pure().unwrap())
                    .unwrap()
            } else {
                game.play(&a, &b, &mut rng).unwrap()
            };
            prop_assert_eq!(to_a.to_bits(), reference.fitness_a.to_bits());
            prop_assert_eq!(to_b.to_bits(), reference.fitness_b.to_bits());
        }
    }
}

/// Plays every pair through the lane-parallel batch kernel at `width` and
/// through the one-game-at-a-time compiled kernel on the same per-pair
/// streams, asserting bit-identical outcomes *and* final stream positions.
fn assert_batched_matches_single(
    game: &IpdGame,
    pairs: &[(StrategyKind, StrategyKind)],
    width: usize,
    seed: u64,
) {
    let compiled: Vec<(CompiledStrategy, CompiledStrategy)> = pairs
        .iter()
        .map(|(a, b)| (CompiledStrategy::compile(a), CompiledStrategy::compile(b)))
        .collect();
    let mut batch = BatchedDraws::new();
    batch.begin(game.memory().num_states());
    for (k, (ca, cb)) in compiled.iter().enumerate() {
        let table = CompiledPairTable::build(ca, cb);
        batch.push_game_table(
            &table,
            substream_state(seed, StreamKind::GamePlay, k as u64, 0),
        );
    }
    game.play_batched_width(&mut batch, width).unwrap();
    for (k, (ca, cb)) in compiled.iter().enumerate() {
        let mut rng = Pcg64Mcg::new(substream_state(seed, StreamKind::GamePlay, k as u64, 0));
        let reference = game.play_compiled(ca, cb, &mut rng).unwrap();
        assert_eq!(
            batch.fitness_a[k].to_bits(),
            reference.fitness_a.to_bits(),
            "lane {k} fitness_a at width {width}"
        );
        assert_eq!(
            batch.fitness_b[k].to_bits(),
            reference.fitness_b.to_bits(),
            "lane {k} fitness_b at width {width}"
        );
        assert_eq!(
            batch.cooperations_a[k], reference.cooperations_a,
            "lane {k} cooperations_a at width {width}"
        );
        assert_eq!(
            batch.cooperations_b[k], reference.cooperations_b,
            "lane {k} cooperations_b at width {width}"
        );
        assert_eq!(
            batch.final_rng_state(k),
            rng.raw_state(),
            "lane {k} stream position at width {width}"
        );
    }
}

fn arb_pair_block() -> impl PropStrategy<
    Value = (
        MemoryDepth,
        Vec<(StrategyKind, StrategyKind)>,
        f64,
        u32,
        u64,
    ),
> {
    (1u32..=2)
        .prop_map(|n| MemoryDepth::new(n).unwrap())
        .prop_flat_map(|memory| {
            (
                proptest::collection::vec((arb_strategy(memory), arb_strategy(memory)), 0..12),
                (0u8..3, 0.0f64..=1.0),
                1u32..80,
                any::<u64>(),
            )
                .prop_map(move |(pairs, (noise_kind, noise), rounds, seed)| {
                    let noise = match noise_kind {
                        0 => 0.0,
                        1 => noise,
                        _ => 0.05,
                    };
                    (memory, pairs, noise, rounds, seed)
                })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The batch kernel is bit-identical to the per-game compiled kernel —
    /// same outcome bytes, same per-pair stream positions — over random
    /// block sizes (including empty and odd tails), every lane width the
    /// kernel monomorphises, both memory depths, and all noise regimes.
    #[test]
    fn batched_draws_are_bit_identical(
        (memory, pairs, noise, rounds, seed) in arb_pair_block(),
        width_pow in 0u32..5,
    ) {
        let game = IpdGame::new(memory, rounds, PayoffMatrix::PAPER, noise).unwrap();
        assert_batched_matches_single(&game, &pairs, 1usize << width_pow, seed);
    }
}

fn mixed_pair(memory: MemoryDepth, seed: u64) -> (StrategyKind, StrategyKind) {
    let mut rng = stream(seed, StreamKind::InitialStrategy, seed);
    (
        StrategyKind::Mixed(MixedStrategy::random(memory, &mut rng)),
        StrategyKind::Mixed(MixedStrategy::random(memory, &mut rng)),
    )
}

#[test]
fn batched_empty_block_is_a_no_op() {
    let game = IpdGame::new(MemoryDepth::ONE, 50, PayoffMatrix::PAPER, 0.0).unwrap();
    let mut batch = BatchedDraws::new();
    batch.begin(MemoryDepth::ONE.num_states());
    game.play_batched(&mut batch).unwrap();
    assert!(batch.is_empty());
    assert_batched_matches_single(&game, &[], 8, 3);
}

#[test]
fn batched_single_game_at_every_width() {
    let game = IpdGame::new(MemoryDepth::TWO, 100, PayoffMatrix::PAPER, 0.02).unwrap();
    let pairs = vec![mixed_pair(MemoryDepth::TWO, 5)];
    for width in [1, 2, 4, 8, 16] {
        assert_batched_matches_single(&game, &pairs, width, 11);
    }
}

#[test]
fn batched_odd_tail_splits_preserve_equivalence() {
    // 7 games at width 16 exercise the tail halving 4 -> 2 -> 1; 5 games at
    // width 4 exercise a full chunk plus a 1-lane tail.
    let game = IpdGame::new(MemoryDepth::ONE, 60, PayoffMatrix::PAPER, 0.0).unwrap();
    for (count, width) in [(7usize, 16usize), (5, 4), (3, 2), (9, 8)] {
        let pairs: Vec<_> = (0..count)
            .map(|i| mixed_pair(MemoryDepth::ONE, 100 + i as u64))
            .collect();
        assert_batched_matches_single(&game, &pairs, width, 17);
    }
}
