//! Mixed-strategy integration suite (ROADMAP open item).
//!
//! `StrategyFamily::Mixed` populations end-to-end: the sequential
//! [`Simulation`], the shared-memory [`ParallelSimulation`] (whose games
//! cannot use the deterministic pair cache, making this the canonical
//! skewed workload for the work-stealing scheduler), and the scheduled
//! distributed executor must all agree byte-for-byte, and the dynamics must
//! actually evolve mixed populations (mutation produces mixed strategies,
//! cooperation propensity stays a proper probability).

use egd_core::prelude::*;
use egd_parallel::{ParallelSimulation, SchedPolicy, ThreadConfig};

fn mixed_config(seed: u64, generations: u64) -> SimulationConfig {
    SimulationConfig::builder()
        .memory(MemoryDepth::ONE)
        .family(StrategyFamily::Mixed)
        .num_ssets(16)
        .agents_per_sset(2)
        .rounds_per_game(30)
        .generations(generations)
        .pc_rate(0.4)
        .mutation_rate(0.1)
        .seed(seed)
        .build()
        .unwrap()
}

fn population_bytes(population: &Population) -> Vec<u8> {
    serde_json::to_vec(population).expect("population serialises")
}

#[test]
fn initial_population_is_fully_mixed() {
    let config = mixed_config(41, 10);
    let population = config.initial_population().unwrap();
    assert!(population
        .strategies()
        .iter()
        .all(|s| matches!(s, StrategyKind::Mixed(_))));
    let propensity = population.mean_cooperation_propensity();
    assert!((0.0..=1.0).contains(&propensity));
}

#[test]
fn sequential_mixed_run_evolves_and_reports() {
    let config = mixed_config(42, 120);
    let mut simulation = Simulation::new(config).unwrap();
    let report = simulation.run();
    assert_eq!(report.generations_run, 120);
    // Learning + mutation must actually touch a mixed population.
    assert!(report.generations_with_change > 0);
    let census = simulation.population().census();
    assert!(!census.is_empty());
    assert!(simulation
        .population()
        .strategies()
        .iter()
        .all(|s| matches!(s, StrategyKind::Mixed(_))));
    assert!(simulation.last_fitness().iter().all(|f| f.is_finite()));
}

#[test]
fn parallel_mixed_run_is_byte_identical_across_thread_counts() {
    let config = mixed_config(43, 80);
    let mut reference = Simulation::new(config.clone()).unwrap();
    reference.run();
    let reference_bytes = population_bytes(reference.population());

    for threads in [1usize, 2, 4] {
        let mut parallel =
            ParallelSimulation::new(config.clone(), ThreadConfig::with_threads(threads)).unwrap();
        parallel.run();
        assert_eq!(
            population_bytes(parallel.population()),
            reference_bytes,
            "{threads} threads"
        );
        assert_eq!(parallel.last_fitness(), reference.last_fitness());
    }
}

#[test]
fn static_and_adaptive_schedules_agree_on_mixed_runs() {
    let config = mixed_config(44, 60);
    let mut adaptive =
        ParallelSimulation::new(config.clone(), ThreadConfig::with_threads(4)).unwrap();
    let mut fixed = ParallelSimulation::new(
        config,
        ThreadConfig::with_threads(4).with_policy(SchedPolicy::Static),
    )
    .unwrap();
    let adaptive_report = adaptive.run();
    let static_report = fixed.run();
    assert_eq!(
        population_bytes(adaptive.population()),
        population_bytes(fixed.population())
    );
    assert_eq!(
        adaptive_report.generations_with_change,
        static_report.generations_with_change
    );
    // The static engine must never steal; both must report scheduler stats.
    assert_eq!(static_report.sched.unwrap().steals, 0);
    assert!(adaptive_report.sched.unwrap().items > 0);
}

#[test]
fn mixed_runs_through_the_scheduled_executor_match_sequential() {
    let config = mixed_config(45, 40);
    let mut reference = Simulation::new(config.clone()).unwrap();
    reference.run();

    let summary = egd_cluster::ScheduledExecutor::new(
        config,
        egd_cluster::ScheduledConfig::with_ranks(4).threads(2),
    )
    .unwrap()
    .run()
    .unwrap();
    assert_eq!(&summary.population, reference.population());
}

#[test]
fn expected_value_mode_handles_mixed_strategies() {
    let config = mixed_config(46, 30);
    let mut sequential =
        Simulation::with_fitness_mode(config.clone(), FitnessMode::ExpectedValue).unwrap();
    sequential.run();
    let mut parallel = ParallelSimulation::with_fitness_mode(
        config,
        ThreadConfig::with_threads(4),
        FitnessMode::ExpectedValue,
    )
    .unwrap();
    parallel.run();
    assert_eq!(
        population_bytes(sequential.population()),
        population_bytes(parallel.population())
    );
}

#[test]
fn mutation_keeps_the_population_in_the_mixed_family() {
    let config = SimulationConfig::builder()
        .memory(MemoryDepth::ONE)
        .family(StrategyFamily::Mixed)
        .num_ssets(8)
        .agents_per_sset(2)
        .rounds_per_game(20)
        .generations(200)
        .pc_rate(0.2)
        .mutation_rate(0.5)
        .seed(47)
        .build()
        .unwrap();
    let mut simulation = Simulation::new(config).unwrap();
    let report = simulation.run();
    assert!(report.generations_with_change > 0);
    assert!(simulation
        .population()
        .strategies()
        .iter()
        .all(|s| matches!(s, StrategyKind::Mixed(_))));
}
