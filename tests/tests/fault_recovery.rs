//! Chaos suite for the fault-tolerance subsystem: deterministic fault
//! injection (`egd-fault`), generation-granular checkpoint/restart, and the
//! supervised recovery loop in `egd-cluster`.
//!
//! The load-bearing claim mirrors the repo's determinism-golden discipline:
//! for any seeded [`FaultPlan`] within the survivable envelope, a supervised
//! run's final population is **byte-identical** to the fault-free golden —
//! crashes respawn from a verified common checkpoint, dropped messages retry
//! past the (fire-once) fault, slow ranks are absorbed outright — and a
//! checkpoint round-trips `SimulationState` + RNG stream positions
//! byte-for-byte through the vendored serde codec.
//!
//! The `chaos_*` tests exercise the 256- and 10³-rank regimes and are
//! `#[ignore]`d in debug tier-1; the CI `chaos-smoke` job runs them in
//! release mode (`cargo test --release -- --ignored chaos`).

use egd_cluster::executor::{DistributedConfig, DistributedExecutor};
use egd_cluster::fault::{SupervisedExecutor, SupervisorConfig};
use egd_core::prelude::*;
use egd_core::simulation::{FitnessMode, SimulationState};
use egd_fault::{arm, CheckpointStore, DirStore, FaultEvent, FaultPlan};
use proptest::prelude::*;
use std::sync::Arc;

fn config(seed: u64, num_ssets: usize, generations: u64, rounds: u32) -> SimulationConfig {
    SimulationConfig::builder()
        .memory(MemoryDepth::ONE)
        .num_ssets(num_ssets)
        .agents_per_sset(2)
        .rounds_per_game(rounds)
        .generations(generations)
        .seed(seed)
        .build()
        .unwrap()
}

/// The fault-free reference: a plain (unsupervised) distributed run.
fn golden(cfg: &SimulationConfig, workers: usize) -> Population {
    DistributedExecutor::new(cfg.clone(), DistributedConfig::with_workers(workers))
        .unwrap()
        .run()
        .unwrap()
        .population
}

fn population_bytes(population: &Population) -> Vec<u8> {
    serde_json::to_vec(population).unwrap()
}

#[test]
fn supervised_run_without_faults_matches_plain_run() {
    let cfg = config(301, 12, 10, 15);
    let reference = golden(&cfg, 4);
    let executor = SupervisedExecutor::new(
        cfg,
        DistributedConfig::with_workers(4),
        SupervisorConfig::default().checkpoint_interval(3),
    )
    .unwrap();
    let run = executor.run().unwrap();
    assert_eq!(run.summary.population, reference);
    assert_eq!(run.recovery.attempts, 1);
    assert_eq!(run.recovery.retries, 0);
    assert_eq!(run.recovery.respawns, 0);
    assert_eq!(run.recovery.faults_injected, 0);
    // Generations 0, 3, 6, 9 were checkpointed on each of the 5 ranks.
    assert_eq!(run.recovery.checkpoints_saved, 4 * 5);
    let metrics = run.metrics();
    assert_eq!(metrics.counters.get("fault_attempts"), Some(&1));
    assert_eq!(metrics.counters.get("fault_checkpoints_saved"), Some(&20));
}

#[test]
fn checkpoints_round_trip_bytes_and_match_the_sequential_run() {
    // A supervised distributed run over an on-disk store: every rank's
    // snapshot at the latest common generation must round-trip byte-for-byte
    // through the vendored serde codec AND byte-match the snapshot a
    // sequential run produces at the same boundary — the distributed state
    // is the sequential state.
    let cfg = config(302, 12, 9, 15);
    let workers = 4usize;
    let store = Arc::new(DirStore::tempdir().unwrap());
    let executor = SupervisedExecutor::with_store(
        cfg.clone(),
        DistributedConfig::with_workers(workers),
        SupervisorConfig::default().checkpoint_interval(4),
        Arc::clone(&store) as Arc<dyn CheckpointStore>,
    )
    .unwrap();
    executor.run().unwrap();

    let ranks = workers + 1;
    for rank in 0..ranks {
        assert_eq!(store.generations(rank).unwrap(), vec![0, 4, 8]);
    }
    let generation = 8u64;
    let reference = store.load(0, generation).unwrap().unwrap();
    for rank in 1..ranks {
        assert_eq!(
            store.load(rank, generation).unwrap().unwrap(),
            reference,
            "rank {rank} snapshot diverged"
        );
    }
    // Byte round-trip: decode (verifying the RNG stream positions re-derive
    // exactly) and re-encode to the identical bytes.
    let state = SimulationState::from_bytes(&reference).unwrap();
    assert_eq!(state.generation, generation);
    assert_eq!(state.to_bytes().unwrap(), reference);

    // Cross-engine: the sequential simulation checkpointed at the same
    // boundary produces the same bytes.
    let mut sequential = Simulation::new(cfg.clone()).unwrap();
    sequential.run_for(generation).unwrap();
    assert_eq!(sequential.checkpoint().to_bytes().unwrap(), reference);

    // And resuming the sequential run from the *distributed* snapshot
    // finishes bit-identically to the straight run.
    let mut straight = Simulation::new(cfg.clone()).unwrap();
    straight.run();
    let mut resumed = Simulation::restore(cfg.clone(), &state, FitnessMode::Simulated).unwrap();
    resumed.run_for(cfg.generations - generation).unwrap();
    assert_eq!(resumed.population(), straight.population());
}

#[test]
fn injected_crash_respawns_from_checkpoint_byte_identical() {
    let cfg = config(303, 12, 8, 15);
    let reference = golden(&cfg, 6);
    let plan = FaultPlan::new(501).with(FaultEvent::CrashAtGeneration {
        rank: 3,
        generation: 5,
    });
    let _session = arm(plan);
    let executor = SupervisedExecutor::new(
        cfg,
        DistributedConfig::with_workers(6),
        SupervisorConfig::default()
            .checkpoint_interval(2)
            .fault_domain(501),
    )
    .unwrap();
    let run = executor.run().unwrap();
    assert_eq!(
        population_bytes(&run.summary.population),
        population_bytes(&reference)
    );
    assert_eq!(run.recovery.attempts, 2);
    assert_eq!(run.recovery.respawns, 1);
    assert_eq!(run.recovery.retries, 0);
    assert_eq!(run.recovery.crashes_injected, 1);
    // Rank 3 crashed at the top of generation 5, so its newest checkpoint is
    // generation 4 at best; the respawn resumed from a checkpoint and
    // replayed at least the crashed generation.
    assert_eq!(run.recovery.checkpoint_resumes, 1);
    assert!(run.recovery.generations_replayed >= 1);
    assert_eq!(run.recovery.repricings, 1);
    assert!(run.recovery.repriced_max_block_weight > 0);
}

#[test]
fn injected_drop_stalls_then_retries_byte_identical() {
    let cfg = config(304, 12, 6, 15);
    let reference = golden(&cfg, 6);
    // The final decision broadcast's tree packet to rank 1 vanishes. Channel
    // (0, 1) carries exactly two broadcast packets per generation (the PC
    // announcement and the decision; rank 1 is a direct tree child of the
    // root), so ordinal 11 is the last one — with no later same-channel
    // packet to mis-consume, rank 1 and its subtree stall cleanly, no rank
    // errors, and the supervisor classifies the failure *transient*.
    let plan = FaultPlan::new(502).with(FaultEvent::DropMessage {
        from: 0,
        to: 1,
        nth: 11,
    });
    let _session = arm(plan);
    let executor = SupervisedExecutor::new(
        cfg,
        DistributedConfig::with_workers(6),
        SupervisorConfig::default()
            .checkpoint_interval(2)
            .fault_domain(502),
    )
    .unwrap();
    let run = executor.run().unwrap();
    assert_eq!(
        population_bytes(&run.summary.population),
        population_bytes(&reference)
    );
    assert_eq!(run.recovery.attempts, 2);
    assert_eq!(run.recovery.retries, 1);
    assert_eq!(run.recovery.respawns, 0);
    assert_eq!(run.recovery.drops_injected, 1);
}

#[test]
fn injected_delay_preserves_results_without_recovery() {
    let cfg = config(305, 12, 6, 15);
    let reference = golden(&cfg, 6);
    // Held for two subsequent deliveries: the rest of the broadcast tree
    // ages the packet out, rank 1 just receives it late. No stall, no
    // recovery, identical science.
    let plan = FaultPlan::new(503).with(FaultEvent::DelayMessage {
        from: 0,
        to: 1,
        nth: 0,
        held_for: 2,
    });
    let _session = arm(plan);
    let executor = SupervisedExecutor::new(
        cfg,
        DistributedConfig::with_workers(6),
        SupervisorConfig::default().fault_domain(503),
    )
    .unwrap();
    let run = executor.run().unwrap();
    assert_eq!(
        population_bytes(&run.summary.population),
        population_bytes(&reference)
    );
    assert_eq!(run.recovery.attempts, 1);
    assert_eq!(run.recovery.delays_injected, 1);
}

#[test]
fn injected_slow_rank_is_absorbed_without_recovery() {
    let cfg = config(306, 12, 6, 15);
    let reference = golden(&cfg, 6);
    let plan = FaultPlan::new(504).with(FaultEvent::SlowRank {
        rank: 2,
        generation: 1,
        yields: 40,
    });
    let _session = arm(plan);
    let executor = SupervisedExecutor::new(
        cfg,
        DistributedConfig::with_workers(6),
        SupervisorConfig::default().fault_domain(504),
    )
    .unwrap();
    let run = executor.run().unwrap();
    assert_eq!(
        population_bytes(&run.summary.population),
        population_bytes(&reference)
    );
    assert_eq!(run.recovery.attempts, 1);
    assert_eq!(run.recovery.retries, 0);
    assert_eq!(run.recovery.respawns, 0);
    assert_eq!(run.recovery.slow_ranks_injected, 1);
}

#[test]
fn post_recovery_summary_does_not_double_count_pre_crash_traffic() {
    // Satellite check: a crash on attempt 1 generates real traffic that dies
    // with its world. With checkpointing disabled the respawn replays from
    // generation 0, so the supervised summary's traffic must equal the
    // fault-free run's traffic *exactly* — any double counting of the
    // pre-crash broadcasts would show immediately.
    let cfg = config(307, 12, 6, 15);
    let reference = DistributedExecutor::new(cfg.clone(), DistributedConfig::with_workers(4))
        .unwrap()
        .run()
        .unwrap();
    let plan = FaultPlan::new(505).with(FaultEvent::CrashAtGeneration {
        rank: 1,
        generation: 2,
    });
    let _session = arm(plan);
    let executor = SupervisedExecutor::new(
        cfg,
        DistributedConfig::with_workers(4),
        SupervisorConfig::default()
            .checkpoint_interval(0)
            .fault_domain(505),
    )
    .unwrap();
    let run = executor.run().unwrap();
    assert_eq!(run.summary.population, reference.population);
    assert_eq!(run.recovery.respawns, 1);
    assert_eq!(run.recovery.checkpoint_resumes, 0);
    assert_eq!(run.summary.traffic, reference.traffic);
    let metrics = run.metrics();
    assert_eq!(metrics.traffic.broadcasts, reference.traffic.broadcasts);
    assert_eq!(metrics.counters.get("fault_respawns"), Some(&1));
}

#[test]
fn combined_plan_survives_multiple_recoveries_byte_identical() {
    let cfg = config(308, 12, 8, 15);
    let reference = golden(&cfg, 6);
    let plan = FaultPlan::new(506)
        .with(FaultEvent::DropMessage {
            from: 0,
            to: 2,
            nth: 1,
        })
        .with(FaultEvent::CrashAtGeneration {
            rank: 4,
            generation: 3,
        })
        .with(FaultEvent::SlowRank {
            rank: 1,
            generation: 6,
            yields: 16,
        })
        // Second crash hits the SAME rank two generations later, so it can
        // only fire after the first recovery has replayed rank 4 past
        // generation 3 — the two crashes are forced into distinct attempts.
        .with(FaultEvent::CrashAtGeneration {
            rank: 4,
            generation: 5,
        });
    let survivable = plan.survivable_attempts();
    let _session = arm(plan);
    let executor = SupervisedExecutor::new(
        cfg,
        DistributedConfig::with_workers(6),
        SupervisorConfig::default()
            .checkpoint_interval(2)
            .max_attempts(survivable + 2)
            .fault_domain(506),
    )
    .unwrap();
    let run = executor.run().unwrap();
    assert_eq!(
        population_bytes(&run.summary.population),
        population_bytes(&reference)
    );
    assert_eq!(run.recovery.crashes_injected, 2);
    assert_eq!(run.recovery.faults_injected, 4);
    // Attempt 1 absorbs the drop plus the first crash with one respawn
    // (ranks progress asynchronously, so both fire before the stall is
    // detected); the second crash forces a second respawn; the slow rank is
    // absorbed in the final attempt without recovery.
    assert_eq!(run.recovery.respawns, 2);
    assert_eq!(run.recovery.retries, 0);
    assert_eq!(run.recovery.attempts, 3);
    assert_eq!(run.recovery.checkpoint_resumes, 2);
    assert!(run.recovery.generations_replayed >= 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any seeded plan inside the survivable envelope converges to the
    /// fault-free golden, byte-for-byte.
    #[test]
    fn random_survivable_plans_converge_to_golden(raw_seed in 1u64..10_000) {
        let generations = 5u64;
        let workers = 6usize;
        let cfg = config(309, 12, generations, 10);
        let reference = golden(&cfg, workers);
        // Domain 0 is the untagged default; force a nonzero plan seed so
        // concurrent untagged worlds can never match the plan.
        let seed = raw_seed | 1;
        let plan = FaultPlan::random(seed, workers + 1, generations, 3);
        let survivable = plan.survivable_attempts();
        let _session = arm(plan);
        let executor = SupervisedExecutor::new(
            cfg,
            DistributedConfig::with_workers(workers),
            SupervisorConfig::default()
                .checkpoint_interval(2)
                .max_attempts(survivable + 2)
                .fault_domain(seed),
        )
        .unwrap();
        let run = executor.run().unwrap();
        prop_assert_eq!(
            population_bytes(&run.summary.population),
            population_bytes(&reference)
        );
        prop_assert!(run.recovery.attempts <= survivable + 2);
    }
}

// ---------------------------------------------------------------------------
// Chaos smoke: the 256- and 10³-rank regimes, run in release mode by the CI
// `chaos-smoke` job (`cargo test --release -- --ignored chaos`).
// ---------------------------------------------------------------------------

/// The three canonical plan shapes of the acceptance criteria — crash,
/// drop+retry, slow-rank — each scaled to a world of `ranks` ranks.
fn canonical_plans(seed_base: u64, ranks: usize) -> Vec<FaultPlan> {
    vec![
        FaultPlan::new(seed_base).with(FaultEvent::CrashAtGeneration {
            rank: ranks / 3,
            generation: 2,
        }),
        FaultPlan::new(seed_base + 1).with(FaultEvent::DropMessage {
            from: 0,
            to: 1,
            nth: 0,
        }),
        FaultPlan::new(seed_base + 2).with(FaultEvent::SlowRank {
            rank: ranks / 2,
            generation: 1,
            yields: 64,
        }),
    ]
}

fn chaos_suite(ranks: usize, sim_seed: u64, seed_base: u64) {
    let workers = ranks - 1;
    let generations = 4u64;
    let cfg = config(sim_seed, workers, generations, 5);
    let reference = golden(&cfg, workers);
    for plan in canonical_plans(seed_base, ranks) {
        let seed = plan.seed;
        let label = plan.events[0].kind_label();
        let expect_recovery = matches!(
            plan.events[0],
            FaultEvent::CrashAtGeneration { .. } | FaultEvent::DropMessage { .. }
        );
        let _session = arm(plan);
        let executor = SupervisedExecutor::new(
            cfg.clone(),
            DistributedConfig::with_workers(workers).pool_threads(4),
            SupervisorConfig::default()
                .checkpoint_interval(2)
                .fault_domain(seed),
        )
        .unwrap();
        let run = executor.run().unwrap();
        assert_eq!(
            population_bytes(&run.summary.population),
            population_bytes(&reference),
            "{label} plan {seed} diverged from the fault-free golden at {ranks} ranks"
        );
        assert_eq!(run.recovery.faults_injected, 1, "{label} plan {seed}");
        assert_eq!(
            run.recovery.attempts,
            if expect_recovery { 2 } else { 1 },
            "{label} plan {seed}"
        );
    }
}

#[test]
#[ignore = "256-rank chaos smoke: run in release mode via the CI chaos-smoke job"]
fn chaos_suite_256_ranks() {
    chaos_suite(256, 311, 9001);
}

#[test]
#[ignore = "10^3-rank chaos smoke: run in release mode via the CI chaos-smoke job"]
fn chaos_suite_1000_ranks() {
    chaos_suite(1000, 312, 9101);
}

#[test]
#[ignore = "chaos study for EXPERIMENTS.md: run in release mode via the CI chaos-smoke job"]
fn chaos_study_table() {
    // Prints the EXPERIMENTS.md chaos-study rows: per plan shape, the faults
    // fired, recoveries, generations replayed, and the wall overhead of the
    // supervised chaotic run versus a supervised fault-free run of the same
    // world (so the checkpoint cadence is priced into both sides).
    let ranks = 256usize;
    let workers = ranks - 1;
    let generations = 4u64;
    let cfg = config(313, workers, generations, 5);
    let reference = golden(&cfg, workers);

    let supervised = |domain: u64| {
        SupervisedExecutor::new(
            cfg.clone(),
            DistributedConfig::with_workers(workers).pool_threads(4),
            SupervisorConfig::default()
                .checkpoint_interval(2)
                .fault_domain(domain),
        )
        .unwrap()
    };

    let start = std::time::Instant::now();
    let baseline_run = supervised(0).run().unwrap();
    let baseline_wall = start.elapsed().as_secs_f64();
    assert_eq!(baseline_run.summary.population, reference);

    println!("| plan | ranks | faults fired | retries | respawns | generations replayed | wall overhead |");
    println!("|---|---|---|---|---|---|---|");
    println!("| fault-free | {ranks} | 0 | 0 | 0 | 0 | 1.00x |");
    for plan in canonical_plans(9201, ranks) {
        let seed = plan.seed;
        let label = plan.events[0].kind_label();
        let _session = arm(plan);
        let start = std::time::Instant::now();
        let run = supervised(seed).run().unwrap();
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(run.summary.population, reference, "{label} plan {seed}");
        println!(
            "| {label} (seed {seed}) | {ranks} | {} | {} | {} | {} | {:.2}x |",
            run.recovery.faults_injected,
            run.recovery.retries,
            run.recovery.respawns,
            run.recovery.generations_replayed,
            wall / baseline_wall,
        );
    }
}
