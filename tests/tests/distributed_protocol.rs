//! Integration tests of the simulated cluster substrate: communicator
//! semantics under load, strategy-view consistency across ranks, and the
//! relationship between the communication-mode ladder and observed traffic.

use egd_cluster::cost::CommMode;
use egd_cluster::executor::{DistributedConfig, DistributedExecutor};
use egd_cluster::machine::MachineSpec;
use egd_cluster::mpi::SimWorld;
use egd_cluster::perf::{ScalingHarness, Workload};
use egd_cluster::topology::ClusterTopology;
use egd_core::prelude::*;

fn base_config(seed: u64, generations: u64) -> SimulationConfig {
    SimulationConfig::builder()
        .memory(MemoryDepth::ONE)
        .num_ssets(16)
        .agents_per_sset(2)
        .rounds_per_game(25)
        .generations(generations)
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn communicator_handles_many_concurrent_collectives() {
    let world = SimWorld::new(9).unwrap();
    let (results, _) = world
        .run(|mut comm| {
            let mut total = 0.0;
            for round in 0..50u64 {
                let contribution = vec![comm.rank() as f64 + round as f64];
                let sum = comm.allreduce_sum(&contribution)?;
                total += sum[0];
                comm.barrier()?;
            }
            Ok(total)
        })
        .unwrap();
    // Every rank computed the same sequence of all-reduce results.
    for r in &results {
        assert!((r - results[0]).abs() < 1e-9);
    }
    // Sum over rounds of (sum of ranks + 9 * round) = 50 * 36 + 9 * (0 + ... + 49).
    let expected = 50.0 * 36.0 + 9.0 * (49.0 * 50.0 / 2.0);
    assert!((results[0] - expected).abs() < 1e-9);
}

#[test]
fn every_rank_ends_with_the_same_strategy_view() {
    // This is the invariant the paper's broadcast protocol exists to protect.
    let cfg = base_config(11, 80);
    for workers in [2usize, 5, 8] {
        let summary =
            DistributedExecutor::new(cfg.clone(), DistributedConfig::with_workers(workers))
                .unwrap()
                .run()
                .unwrap();
        // run() itself errors if any rank diverges; double-check the summary
        // is a valid population of the right shape.
        assert_eq!(summary.population.num_ssets(), 16);
        assert_eq!(summary.ranks, workers + 1);
    }
}

#[test]
fn comm_ladder_reduces_p2p_traffic_without_changing_science() {
    let cfg = base_config(13, 60);
    let blocking = DistributedExecutor::new(
        cfg.clone(),
        DistributedConfig::with_workers(4).comm_mode(CommMode::Blocking),
    )
    .unwrap()
    .run()
    .unwrap();
    let nonblocking = DistributedExecutor::new(
        cfg,
        DistributedConfig::with_workers(4).comm_mode(CommMode::NonBlocking),
    )
    .unwrap()
    .run()
    .unwrap();

    assert_eq!(blocking.population, nonblocking.population);
    // The optimised protocol sends strictly fewer point-to-point bytes.
    assert!(nonblocking.traffic.1 < blocking.traffic.1);
    // Both send the same number of broadcasts (announcement + decision per
    // generation).
    assert_eq!(blocking.traffic.2, nonblocking.traffic.2);
}

#[test]
fn distributed_traces_reflect_actual_rank_count() {
    let cfg = base_config(17, 30);
    let summary =
        DistributedExecutor::new(cfg, DistributedConfig::with_workers(6).trace_interval(10))
            .unwrap()
            .run()
            .unwrap();
    assert_eq!(summary.trace.generations.len(), 3);
    for trace in &summary.trace.generations {
        assert_eq!(trace.ranks.len(), 7);
        // Worker compute time exists, Nature Agent (rank 0) does no game play.
        assert!(trace.mean_compute_us() >= 0.0);
    }
}

#[test]
fn analytic_model_and_real_executor_agree_on_comm_mode_ordering() {
    // The cost model says blocking communication is more expensive; the real
    // executor's traffic counters must point the same way (more bytes moved).
    let machine = MachineSpec::blue_gene_p();
    let topology = ClusterTopology::new(machine, 256, 4, 1, 4096).unwrap();
    let cost = egd_cluster::cost::CostModel::blue_gene_like();
    let blocking_us =
        cost.generation_comm_time_us(&topology, MemoryDepth::ONE, 0.1, 0.05, CommMode::Blocking);
    let nonblocking_us = cost.generation_comm_time_us(
        &topology,
        MemoryDepth::ONE,
        0.1,
        0.05,
        CommMode::NonBlocking,
    );
    assert!(blocking_us > nonblocking_us);

    let cfg = base_config(19, 40);
    let blocking = DistributedExecutor::new(
        cfg.clone(),
        DistributedConfig::with_workers(4).comm_mode(CommMode::Blocking),
    )
    .unwrap()
    .run()
    .unwrap();
    let nonblocking = DistributedExecutor::new(
        cfg,
        DistributedConfig::with_workers(4).comm_mode(CommMode::NonBlocking),
    )
    .unwrap()
    .run()
    .unwrap();
    assert!(blocking.traffic.1 > nonblocking.traffic.1);
}

#[test]
fn scaling_harness_matches_paper_scale_limits() {
    // The largest configurations the paper reports are expressible and give
    // finite, positive estimates.
    let harness = ScalingHarness::blue_gene_p();
    let weak_point = harness
        .weak_scaling(
            &Workload::paper(0, MemoryDepth::SIX, 1),
            4096,
            &[1024, 294_912],
        )
        .unwrap();
    assert_eq!(weak_point.len(), 2);
    let full_machine = &weak_point[1];
    assert_eq!(full_machine.processors, 294_912);
    // Population of ~1.2 billion SSets, i.e. the paper's 1,073,741,824-SSet
    // scale is within the modelled range.
    assert!(full_machine.worker_ranks * 4096 >= 1_073_741_824);
    assert!(full_machine.time_seconds.is_finite());
}
