//! Integration tests of the simulated cluster substrate: communicator
//! semantics under load, strategy-view consistency across ranks, the
//! relationship between the communication-mode ladder and observed traffic,
//! and — since the thread-per-rank transport was retired — the cooperative
//! task backend's failure paths (rank-named panics, deadlock detection),
//! fault-injection protocol edges (tree-root crash, fault inside a barrier,
//! crash on the last generation, plans that never fire) and the 10³-rank
//! scale regime (the `scale_*` suites, `#[ignore]`d in debug tier-1 and run
//! in release mode by the CI `scale-smoke` job).

use egd_cluster::cost::{CommMode, TopologyCost};
use egd_cluster::executor::{DistributedConfig, DistributedExecutor};
use egd_cluster::fault::{SupervisedExecutor, SupervisorConfig};
use egd_cluster::machine::MachineSpec;
use egd_cluster::mpi::{PendingOp, SimWorld};
use egd_cluster::perf::{ScalingHarness, Workload};
use egd_cluster::scheduled::{run_rank_tasks, ScheduledConfig, ScheduledExecutor};
use egd_cluster::topology::ClusterTopology;
use egd_core::prelude::*;

fn base_config(seed: u64, generations: u64) -> SimulationConfig {
    SimulationConfig::builder()
        .memory(MemoryDepth::ONE)
        .num_ssets(16)
        .agents_per_sset(2)
        .rounds_per_game(25)
        .generations(generations)
        .seed(seed)
        .build()
        .unwrap()
}

fn scale_config(seed: u64, num_ssets: usize, generations: u64) -> SimulationConfig {
    SimulationConfig::builder()
        .memory(MemoryDepth::ONE)
        .num_ssets(num_ssets)
        .agents_per_sset(2)
        .rounds_per_game(10)
        .generations(generations)
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn communicator_handles_many_concurrent_collectives() {
    let world = SimWorld::new(9).unwrap();
    let (results, _) = world
        .run(|mut comm| async move {
            let mut total = 0.0;
            for round in 0..50u64 {
                let contribution = vec![comm.rank() as f64 + round as f64];
                let sum = comm.allreduce_sum(&contribution).await?;
                total += sum[0];
                comm.barrier().await?;
            }
            Ok(total)
        })
        .unwrap();
    // Every rank computed the same sequence of all-reduce results.
    for r in &results {
        assert!((r - results[0]).abs() < 1e-9);
    }
    // Sum over rounds of (sum of ranks + 9 * round) = 50 * 36 + 9 * (0 + ... + 49).
    let expected = 50.0 * 36.0 + 9.0 * (49.0 * 50.0 / 2.0);
    assert!((results[0] - expected).abs() < 1e-9);
}

#[test]
fn task_world_multiplexes_rank_count_far_beyond_worker_count() {
    // 96 ranks on a 2-thread pool: under thread-per-rank this needed 96 OS
    // threads; as cooperative tasks the blocked receives yield instead of
    // parking workers, so the ring + collective completes on 2 threads.
    let world = SimWorld::new(96).unwrap().workers(2);
    let (results, _) = world
        .run(|mut comm| async move {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 11, &(comm.rank() as u64))?;
            let from_prev: u64 = comm.recv(prev, 11).await?;
            let sum = comm.allreduce_sum(&[from_prev as f64]).await?;
            Ok(sum[0])
        })
        .unwrap();
    // The all-reduce saw every rank id exactly once.
    let expected = (95.0 * 96.0) / 2.0;
    for r in results {
        assert_eq!(r, expected);
    }
}

#[test]
fn task_world_panic_error_names_rank_and_payload() {
    let world = SimWorld::new(12).unwrap().workers(2);
    let err = world
        .run(|mut comm| async move {
            comm.barrier().await?;
            if comm.rank() == 7 {
                panic!("fitness table corrupted");
            }
            Ok(comm.rank())
        })
        .unwrap_err();
    let message = err.to_string();
    assert!(message.contains("rank 7"), "{message}");
    assert!(message.contains("fitness table corrupted"), "{message}");
}

#[test]
fn task_world_detects_protocol_deadlock_instead_of_hanging() {
    let world = SimWorld::new(4).unwrap().workers(2);
    let err = world
        .run(|mut comm| async move {
            if comm.rank() == 3 {
                // Nobody ever sends tag 42.
                let _: u8 = comm.recv(0, 42).await?;
            }
            Ok(())
        })
        .unwrap_err();
    let message = err.to_string();
    assert!(message.contains("deadlock"), "{message}");
    assert!(message.contains('3'), "{message}");
}

#[test]
fn scheduled_rank_tasks_edge_paths() {
    // Zero ranks: a valid empty workload.
    let empty: Vec<_> = run_rank_tasks(4, 0, Ok::<usize, _>);
    assert!(empty.is_empty());

    // Fewer ranks than workers: rank-ordered results, idle workers unused.
    let few: Vec<usize> = run_rank_tasks(16, 3, |rank| Ok(rank + 1))
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    assert_eq!(few, vec![1, 2, 3]);

    // A panicking rank body surfaces as a rank-named error without taking
    // down its siblings or poisoning the pool.
    let mixed = run_rank_tasks(4, 6, |rank| {
        if rank == 2 {
            panic!("bad block");
        }
        Ok(rank)
    });
    let message = mixed[2].as_ref().unwrap_err().to_string();
    assert!(message.contains("rank 2"), "{message}");
    assert!(message.contains("bad block"), "{message}");
    assert!(mixed.iter().enumerate().all(|(i, r)| i == 2 || r.is_ok()));
    let again: Vec<usize> = run_rank_tasks(4, 6, Ok)
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    assert_eq!(again, (0..6).collect::<Vec<_>>());
}

#[test]
fn every_rank_ends_with_the_same_strategy_view() {
    // This is the invariant the paper's broadcast protocol exists to protect.
    let cfg = base_config(11, 80);
    for workers in [2usize, 5, 8] {
        let summary =
            DistributedExecutor::new(cfg.clone(), DistributedConfig::with_workers(workers))
                .unwrap()
                .run()
                .unwrap();
        // run() itself errors if any rank diverges; double-check the summary
        // is a valid population of the right shape.
        assert_eq!(summary.population.num_ssets(), 16);
        assert_eq!(summary.ranks, workers + 1);
    }
}

#[test]
fn protocol_pool_size_does_not_change_results() {
    // The rank-task pool multiplexing is pure scheduling: 1, 2 or 4 pool
    // threads replay the identical protocol.
    let cfg = base_config(23, 50);
    let reference = DistributedExecutor::new(
        cfg.clone(),
        DistributedConfig::with_workers(6).pool_threads(1),
    )
    .unwrap()
    .run()
    .unwrap();
    for pool in [2usize, 4] {
        let summary = DistributedExecutor::new(
            cfg.clone(),
            DistributedConfig::with_workers(6).pool_threads(pool),
        )
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(summary.population, reference.population);
        assert_eq!(
            summary.generations_with_change,
            reference.generations_with_change
        );
    }
}

#[test]
fn comm_ladder_reduces_p2p_traffic_without_changing_science() {
    let cfg = base_config(13, 60);
    let blocking = DistributedExecutor::new(
        cfg.clone(),
        DistributedConfig::with_workers(4).comm_mode(CommMode::Blocking),
    )
    .unwrap()
    .run()
    .unwrap();
    let nonblocking = DistributedExecutor::new(
        cfg,
        DistributedConfig::with_workers(4).comm_mode(CommMode::NonBlocking),
    )
    .unwrap()
    .run()
    .unwrap();

    assert_eq!(blocking.population, nonblocking.population);
    // The optimised protocol moves strictly fewer payload bytes to the
    // Nature Agent: two point-to-point fitness values per selection instead
    // of an all-rank gather of whole blocks.
    assert!(
        nonblocking.traffic.p2p_bytes + nonblocking.traffic.gather_bytes
            < blocking.traffic.p2p_bytes + blocking.traffic.gather_bytes
    );
    assert!(blocking.traffic.gathers > 0);
    assert_eq!(nonblocking.traffic.gathers, 0);
    // Both send the same number of broadcasts (announcement + decision per
    // generation).
    assert_eq!(blocking.traffic.broadcasts, nonblocking.traffic.broadcasts);
}

#[test]
fn distributed_traces_reflect_actual_rank_count() {
    let cfg = base_config(17, 30);
    let summary =
        DistributedExecutor::new(cfg, DistributedConfig::with_workers(6).trace_interval(10))
            .unwrap()
            .run()
            .unwrap();
    assert_eq!(summary.trace.generations.len(), 3);
    for trace in &summary.trace.generations {
        assert_eq!(trace.ranks.len(), 7);
        // Worker compute time exists, Nature Agent (rank 0) does no game play.
        assert!(trace.mean_compute_us() >= 0.0);
    }
}

#[test]
fn analytic_model_and_real_executor_agree_on_comm_mode_ordering() {
    // The cost model says blocking communication is more expensive; the real
    // executor's traffic counters must point the same way (more bytes moved).
    let machine = MachineSpec::blue_gene_p();
    let topology = ClusterTopology::new(machine, 256, 4, 1, 4096).unwrap();
    let cost = egd_cluster::cost::CostModel::blue_gene_like();
    let blocking_us =
        cost.generation_comm_time_us(&topology, MemoryDepth::ONE, 0.1, 0.05, CommMode::Blocking);
    let nonblocking_us = cost.generation_comm_time_us(
        &topology,
        MemoryDepth::ONE,
        0.1,
        0.05,
        CommMode::NonBlocking,
    );
    assert!(blocking_us > nonblocking_us);

    let cfg = base_config(19, 40);
    let blocking = DistributedExecutor::new(
        cfg.clone(),
        DistributedConfig::with_workers(4).comm_mode(CommMode::Blocking),
    )
    .unwrap()
    .run()
    .unwrap();
    let nonblocking = DistributedExecutor::new(
        cfg,
        DistributedConfig::with_workers(4).comm_mode(CommMode::NonBlocking),
    )
    .unwrap()
    .run()
    .unwrap();
    assert!(
        blocking.traffic.p2p_bytes + blocking.traffic.gather_bytes
            > nonblocking.traffic.p2p_bytes + nonblocking.traffic.gather_bytes
    );
}

#[test]
fn scaling_harness_matches_paper_scale_limits() {
    // The largest configurations the paper reports are expressible and give
    // finite, positive estimates.
    let harness = ScalingHarness::blue_gene_p();
    let weak_point = harness
        .weak_scaling(
            &Workload::paper(0, MemoryDepth::SIX, 1),
            4096,
            &[1024, 294_912],
        )
        .unwrap();
    assert_eq!(weak_point.len(), 2);
    let full_machine = &weak_point[1];
    assert_eq!(full_machine.processors, 294_912);
    // Population of ~1.2 billion SSets, i.e. the paper's 1,073,741,824-SSet
    // scale is within the modelled range.
    assert!(full_machine.worker_ranks * 4096 >= 1_073_741_824);
    assert!(full_machine.time_seconds.is_finite());
}

// ---------------------------------------------------------------------------
// Fault-path protocol edges: where an injected failure lands relative to the
// per-generation protocol (tree root, inside a collective, on the last
// generation, past the end of the run) must not change what the supervised
// executor ultimately computes. Plans use nonzero seeds so domain-0 worlds in
// sibling tests are never touched; `arm`'s session lock serialises the armed
// tests against each other.
// ---------------------------------------------------------------------------

#[test]
fn supervised_recovery_from_nature_agent_crash() {
    // Rank 0 is both the Nature Agent and the root of every broadcast tree —
    // the worst rank to lose. Its checkpoint must restore the Nature RNG
    // stream positions exactly for the replay to stay on the golden path.
    let cfg = base_config(29, 40);
    let reference = DistributedExecutor::new(cfg.clone(), DistributedConfig::with_workers(4))
        .unwrap()
        .run()
        .unwrap();
    let plan = egd_fault::FaultPlan::new(602).with(egd_fault::FaultEvent::CrashAtGeneration {
        rank: 0,
        generation: 17,
    });
    let _session = egd_fault::arm(plan);
    let run = SupervisedExecutor::new(
        cfg,
        DistributedConfig::with_workers(4),
        SupervisorConfig::default()
            .checkpoint_interval(5)
            .fault_domain(602),
    )
    .unwrap()
    .run()
    .unwrap();
    assert_eq!(run.summary.population, reference.population);
    assert_eq!(
        run.summary.generations_with_change,
        reference.generations_with_change
    );
    assert_eq!(run.recovery.crashes_injected, 1);
    assert_eq!(run.recovery.respawns, 1);
    assert_eq!(run.recovery.attempts, 2);
    assert!(run.recovery.generations_replayed >= 1);
}

#[test]
fn fault_during_barrier_surfaces_blocked_barrier_ops() {
    // Dropping rank 1's up-phase token (the first 1 -> 0 message of a
    // barrier-only world) strands the root mid-collective. The failure report
    // must name the barrier as the pending operation and carry no rank errors
    // or panic — exactly the shape the supervisor classifies as transient.
    let plan = egd_fault::FaultPlan::new(601).with(egd_fault::FaultEvent::DropMessage {
        from: 1,
        to: 0,
        nth: 0,
    });
    let _session = egd_fault::arm(plan);
    let world = SimWorld::new(4).unwrap().fault_domain(601);
    let failure = world
        .run_detailed(|mut comm| async move {
            comm.barrier().await?;
            Ok(comm.rank())
        })
        .unwrap_err();
    assert!(failure.panicked.is_none());
    assert!(
        failure.failed_ranks.is_empty(),
        "{:?}",
        failure.failed_ranks
    );
    assert!(!failure.blocked.is_empty());
    assert!(
        failure
            .blocked
            .iter()
            .all(|(_, op)| matches!(op, Some(PendingOp::Barrier))),
        "{:?}",
        failure.blocked
    );
    // The root itself is among the stranded ranks.
    assert!(failure.blocked.iter().any(|(rank, _)| *rank == 0));
    assert_eq!(egd_fault::injection_report().drops, 1);
}

#[test]
fn crash_on_final_generation_recovers_byte_identical() {
    // The crash fires at the top of the last generation, after the newest
    // checkpoint: recovery replays only the tail and still lands on the
    // golden population.
    let cfg = base_config(31, 6);
    let reference = DistributedExecutor::new(cfg.clone(), DistributedConfig::with_workers(5))
        .unwrap()
        .run()
        .unwrap();
    let plan = egd_fault::FaultPlan::new(603).with(egd_fault::FaultEvent::CrashAtGeneration {
        rank: 2,
        generation: 5,
    });
    let _session = egd_fault::arm(plan);
    let run = SupervisedExecutor::new(
        cfg,
        DistributedConfig::with_workers(5),
        SupervisorConfig::default()
            .checkpoint_interval(2)
            .fault_domain(603),
    )
    .unwrap()
    .run()
    .unwrap();
    assert_eq!(run.summary.population, reference.population);
    assert_eq!(run.recovery.crashes_injected, 1);
    assert_eq!(run.recovery.respawns, 1);
    assert_eq!(run.recovery.checkpoint_resumes, 1);
    assert!(run.recovery.generations_replayed >= 1);
}

#[test]
fn plan_targeting_finished_run_is_a_no_op() {
    // A crash scheduled at a generation the run never reaches (the loop runs
    // 0..generations) must fire nothing: one attempt, no recovery, and a
    // population identical to the plain executor's.
    let cfg = base_config(37, 6);
    let reference = DistributedExecutor::new(cfg.clone(), DistributedConfig::with_workers(3))
        .unwrap()
        .run()
        .unwrap();
    let plan = egd_fault::FaultPlan::new(604).with(egd_fault::FaultEvent::CrashAtGeneration {
        rank: 3,
        generation: 6,
    });
    let _session = egd_fault::arm(plan);
    let run = SupervisedExecutor::new(
        cfg,
        DistributedConfig::with_workers(3),
        SupervisorConfig::default()
            .checkpoint_interval(2)
            .fault_domain(604),
    )
    .unwrap()
    .run()
    .unwrap();
    assert_eq!(run.summary.population, reference.population);
    assert_eq!(run.summary.traffic, reference.traffic);
    assert_eq!(run.recovery.attempts, 1);
    assert_eq!(run.recovery.retries, 0);
    assert_eq!(run.recovery.respawns, 0);
    assert_eq!(run.recovery.faults_injected, 0);
}

// ---------------------------------------------------------------------------
// Scale smoke: the 10³-rank regime the thread-per-rank backend could not
// reach. Debug-mode tier-1 skips these (`#[ignore]`); the CI `scale-smoke`
// job runs them in release via `cargo test --release -- --ignored scale`.
// ---------------------------------------------------------------------------

#[test]
#[ignore = "10^3-rank scale smoke: run in release mode via the CI scale-smoke job"]
fn scale_thousand_rank_protocol_world_collectives() {
    // A full broadcast + gather + barrier protocol at 1000 ranks on a
    // 4-thread pool: pure communicator scale, no game play.
    let ranks = 1000usize;
    let world = SimWorld::new(ranks).unwrap().workers(4);
    let (results, stats) = world
        .run(move |mut comm| async move {
            let seed = if comm.rank() == 0 { Some(42u64) } else { None };
            let seed = comm.broadcast(0, seed).await?;
            let gathered = comm.gather(0, &(comm.rank() as u64 + seed)).await?;
            comm.barrier().await?;
            Ok(if comm.rank() == 0 {
                gathered.iter().sum::<u64>()
            } else {
                0
            })
        })
        .unwrap();
    let expected: u64 = (0..ranks as u64).map(|r| r + 42).sum();
    assert_eq!(results[0], expected);
    let snap = stats.snapshot();
    assert_eq!(snap.broadcasts, 1); // the seed bcast; the barrier is a barrier
    assert_eq!(snap.gathers, 1);
    assert_eq!(snap.barriers, 1000);
    // The binomial tree keeps every collective root at O(log ranks) messages
    // — the flat transport put 999 packets in the root's mailbox here.
    assert!(
        snap.max_root_fanout <= u64::from(egd_cluster::collective::stages(ranks)),
        "root fanout {} at {} ranks",
        snap.max_root_fanout,
        ranks
    );
}

#[test]
#[ignore = "10^5-rank scale smoke: run in release mode via the CI scale-smoke job"]
fn scale_hundred_thousand_rank_collectives() {
    // The 10⁵-rank regime the flat collectives could not reach: the root of
    // each collective now touches ⌈log₂ 10⁵⌉ = 17 messages instead of 10⁵-1.
    let ranks = 100_000usize;
    let world = SimWorld::new(ranks).unwrap().workers(8);
    let (results, stats) = world
        .run(move |mut comm| async move {
            let seed = if comm.rank() == 0 { Some(7u64) } else { None };
            let seed = comm.broadcast(0, seed).await?;
            let sum = comm.allreduce_sum(&[comm.rank() as f64]).await?;
            comm.barrier().await?;
            Ok(seed as f64 + sum[0])
        })
        .unwrap();
    let rank_sum = (ranks as f64 - 1.0) * ranks as f64 / 2.0;
    for r in &results {
        assert_eq!(*r, 7.0 + rank_sum);
    }
    let snap = stats.snapshot();
    assert_eq!(snap.barriers, ranks as u64);
    assert!(
        snap.max_root_fanout <= u64::from(egd_cluster::collective::stages(ranks)),
        "root fanout {} at {} ranks",
        snap.max_root_fanout,
        ranks
    );
}

#[test]
#[ignore = "10^3-rank scale smoke: run in release mode via the CI scale-smoke job"]
fn scale_thousand_rank_distributed_protocol_matches_sequential() {
    // The paper's §V protocol with 1000 worker ranks (1001 tasks) on a
    // 4-thread pool, checked bit-identical against the sequential reference.
    let cfg = scale_config(71, 1000, 3);
    let mut sequential = Simulation::new(cfg.clone()).unwrap();
    sequential.run();
    let summary =
        DistributedExecutor::new(cfg, DistributedConfig::with_workers(1000).pool_threads(4))
            .unwrap()
            .run()
            .unwrap();
    assert_eq!(&summary.population, sequential.population());
    assert_eq!(summary.ranks, 1001);
}

#[test]
#[ignore = "10^3-rank scale smoke: run in release mode via the CI scale-smoke job"]
fn scale_thousand_rank_scheduled_executor_matches_sequential() {
    // The scheduled executor at 1000 ranks on 4 scheduler workers: the
    // rank-count ≫ worker-count regime of the cost-model studies, live.
    let cfg = scale_config(72, 1000, 3);
    let mut sequential = Simulation::new(cfg.clone()).unwrap();
    sequential.run();
    let summary = ScheduledExecutor::new(cfg, ScheduledConfig::with_ranks(1000).threads(4))
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(&summary.population, sequential.population());
    assert_eq!(summary.ranks, 1000);
    let sched = summary.sched.unwrap();
    assert_eq!(sched.items, 1000 * 3);
    assert!(sched.num_workers() <= 4);
    assert!(summary.trace.load_balance.is_some());
}
