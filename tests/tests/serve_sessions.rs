//! Multi-tenant serving suite for `egd-serve`: cost-priced admission,
//! cooperative multiplexing of many sessions onto one shared pool, and the
//! lifecycle edges — suspend/resume, cancellation, crash recovery.
//!
//! The load-bearing claim extends the repo's determinism-golden discipline
//! to the serving layer: a session's output (its final serialised
//! `SimulationState`) is **byte-identical** whether it runs alone or
//! co-scheduled with dozens of tenants — including across one
//! suspend/resume cycle through either `CheckpointStore` backend and across
//! an injected mid-run crash that respawns the session from its latest
//! checkpoint while its neighbours keep running undisturbed.
//!
//! The `stress_*` test exercises the 32-sessions-on-4-workers regime and is
//! `#[ignore]`d in debug tier-1; the CI `serve-smoke` job runs it in
//! release mode (`cargo test --release -- --ignored stress`).

use egd_core::prelude::*;
use egd_core::simulation::Simulation;
use egd_fault::{arm, CheckpointStore, DirStore, FaultEvent, FaultPlan, MemoryStore};
use egd_obs::ExportOptions;
use egd_serve::{
    serve_timeline_json, AdmissionAction, EngineKind, ServeConfig, SessionConfig, SessionManager,
    SessionStatus,
};
use std::sync::Arc;

fn config(seed: u64, num_ssets: usize, generations: u64) -> SimulationConfig {
    SimulationConfig::builder()
        .memory(MemoryDepth::ONE)
        .num_ssets(num_ssets)
        .agents_per_sset(2)
        .rounds_per_game(10)
        .generations(generations)
        .seed(seed)
        .build()
        .unwrap()
}

/// The solo reference: the sequential engine run uninterrupted in its own
/// process, final state serialised — what every served session must match
/// byte-for-byte.
fn solo_final_bytes(cfg: &SimulationConfig) -> Vec<u8> {
    let mut sim = Simulation::new(cfg.clone()).unwrap();
    for _ in 0..cfg.generations {
        sim.step().unwrap();
    }
    sim.checkpoint().to_bytes().unwrap()
}

#[test]
fn co_scheduled_sessions_match_solo_runs_byte_for_byte() {
    // Eight sessions (mixed engines, distinct seeds and sizes) on a
    // two-worker pool: heavy interleaving, every output byte-identical to
    // the same config run alone.
    let mut manager = SessionManager::new(ServeConfig {
        pool_workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let configs: Vec<SimulationConfig> = (0..8)
        .map(|i| config(900 + i, 8 + (i as usize % 3) * 4, 6 + i % 4))
        .collect();
    let mut handles = Vec::new();
    for (i, cfg) in configs.iter().enumerate() {
        let engine = if i % 2 == 0 {
            EngineKind::Sequential
        } else {
            EngineKind::Parallel { threads: 2 }
        };
        let session = SessionConfig::new(format!("tenant-{i}"), cfg.clone()).with_engine(engine);
        handles.push(manager.submit(session).unwrap());
    }
    let report = manager.run().unwrap();

    for (handle, cfg) in handles.iter().zip(&configs) {
        assert_eq!(handle.status(), SessionStatus::Completed);
        assert_eq!(handle.generations_done(), cfg.generations);
        assert_eq!(
            handle.final_state_bytes().unwrap(),
            solo_final_bytes(cfg),
            "session {} diverged from its solo run",
            handle.name()
        );
        // The event stream covers every generation exactly once, in order.
        let events = handle.drain_events();
        assert_eq!(
            events.iter().map(|e| e.generation).collect::<Vec<_>>(),
            (0..cfg.generations).collect::<Vec<_>>()
        );
        assert_eq!(handle.dropped_events(), 0);
    }
    // Unlimited budget: everything was admitted directly, spread over groups.
    assert!(report
        .admission_log
        .iter()
        .take(8)
        .all(|r| r.action == AdmissionAction::Admitted));
    assert_eq!(report.metrics.run.workers, 2);
}

fn suspend_resume_matches_uninterrupted(store: Arc<dyn CheckpointStore>) {
    let cfg = config(911, 12, 12);
    let golden = solo_final_bytes(&cfg);
    let neighbour_cfg = config(912, 8, 9);
    let neighbour_golden = solo_final_bytes(&neighbour_cfg);

    let mut manager = SessionManager::with_store(
        ServeConfig {
            pool_workers: 2,
            ..ServeConfig::default()
        },
        store,
    )
    .unwrap();
    let victim = manager
        .submit(SessionConfig::new("victim", cfg.clone()))
        .unwrap();
    let neighbour = manager
        .submit(SessionConfig::new("neighbour", neighbour_cfg.clone()))
        .unwrap();

    // Cut the run at generation 5, mid-flight.
    victim.suspend_at(5);
    manager.run().unwrap();
    assert_eq!(victim.status(), SessionStatus::Suspended { generation: 5 });
    assert_eq!(neighbour.status(), SessionStatus::Completed);
    // Events up to the suspension boundary were already streamed.
    assert_eq!(victim.drain_events().len(), 5);

    // Resume re-admits (re-priced at the remaining generations) and the next
    // run picks the checkpoint up.
    let status = manager.resume(victim.id()).unwrap();
    assert!(matches!(status, SessionStatus::Admitted { .. }));
    manager.run().unwrap();
    assert_eq!(victim.status(), SessionStatus::Completed);

    assert_eq!(
        victim.final_state_bytes().unwrap(),
        golden,
        "suspend/resume changed the trajectory"
    );
    assert_eq!(
        victim
            .drain_events()
            .iter()
            .map(|e| e.generation)
            .collect::<Vec<_>>(),
        (5..12).collect::<Vec<_>>()
    );
    assert_eq!(neighbour.final_state_bytes().unwrap(), neighbour_golden);
}

#[test]
fn suspend_resume_is_byte_identical_through_the_memory_store() {
    suspend_resume_matches_uninterrupted(Arc::new(MemoryStore::new()));
}

#[test]
fn suspend_resume_is_byte_identical_through_the_dir_store() {
    let store = DirStore::tempdir().unwrap();
    suspend_resume_matches_uninterrupted(Arc::new(store));
}

#[test]
fn admission_rejects_over_capacity_and_drains_the_queue_fifo() {
    let small = config(921, 8, 4);
    // Price one small session, then budget a single group to hold exactly
    // two of them at once.
    let probe = SessionManager::new(ServeConfig::default())
        .unwrap()
        .submit(SessionConfig::new("probe", small.clone()))
        .unwrap();
    let unit = probe.predicted_cost_ns();

    let mut manager = SessionManager::new(ServeConfig {
        pool_workers: 2,
        worker_groups: 1,
        capacity_ns_per_group: 2 * unit,
        max_queued: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let a = manager
        .submit(SessionConfig::new("a", config(921, 8, 4)))
        .unwrap();
    let b = manager
        .submit(SessionConfig::new("b", config(922, 8, 4)))
        .unwrap();
    // Third doesn't fit now -> queued (slot 1 of 1).
    let c = manager
        .submit(SessionConfig::new("c", config(923, 8, 4)))
        .unwrap();
    // Queue is full -> rejected.
    let d = manager
        .submit(SessionConfig::new("d", config(924, 8, 4)))
        .unwrap();
    // Over budget even on an empty group -> rejected outright, not queued.
    let e = manager
        .submit(SessionConfig::new("e", config(925, 8, 400)))
        .unwrap();

    assert!(matches!(a.status(), SessionStatus::Admitted { group: 0 }));
    assert!(matches!(b.status(), SessionStatus::Admitted { group: 0 }));
    assert_eq!(c.status(), SessionStatus::Queued);
    assert_eq!(d.status(), SessionStatus::Rejected);
    assert_eq!(e.status(), SessionStatus::Rejected);

    let report = manager.run().unwrap();
    // A finishing session released budget and the queue head was admitted:
    // everyone admissible completed, byte-identical to solo.
    for (handle, seed) in [(&a, 921), (&b, 922), (&c, 923)] {
        assert_eq!(handle.status(), SessionStatus::Completed);
        assert_eq!(
            handle.final_state_bytes().unwrap(),
            solo_final_bytes(&config(seed, 8, 4))
        );
    }
    assert_eq!(d.status(), SessionStatus::Rejected);
    assert!(report
        .admission_log
        .iter()
        .any(|r| r.session == c.id() && r.action == AdmissionAction::Readmitted));
    // All charges returned once the pool drained.
    assert_eq!(report.group_loads, vec![0]);
}

#[test]
fn cancel_mid_run_leaves_the_pool_clean_for_other_tenants() {
    let keep_cfg = config(931, 10, 8);
    let keep_golden = solo_final_bytes(&keep_cfg);

    let mut manager = SessionManager::new(ServeConfig {
        pool_workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let doomed = manager
        .submit(SessionConfig::new("doomed", config(930, 10, 50)))
        .unwrap();
    let kept = manager
        .submit(SessionConfig::new("kept", keep_cfg.clone()))
        .unwrap();
    doomed.cancel_at(3);
    manager.run().unwrap();

    assert_eq!(doomed.status(), SessionStatus::Cancelled { generation: 3 });
    assert_eq!(doomed.drain_events().len(), 3);
    assert_eq!(kept.status(), SessionStatus::Completed);
    assert_eq!(kept.final_state_bytes().unwrap(), keep_golden);

    // The cancelled tenant returned its budget and the pool accepts and runs
    // new work afterwards.
    let report = manager.report();
    assert!(report.group_loads.iter().all(|&load| load == 0));
    let late_cfg = config(932, 8, 5);
    let late = manager
        .submit(SessionConfig::new("late", late_cfg.clone()))
        .unwrap();
    manager.run().unwrap();
    assert_eq!(late.status(), SessionStatus::Completed);
    assert_eq!(
        late.final_state_bytes().unwrap(),
        solo_final_bytes(&late_cfg)
    );
}

#[test]
fn crashed_session_recovers_from_checkpoint_without_disturbing_neighbours() {
    let victim_cfg = config(941, 10, 10);
    let victim_golden = solo_final_bytes(&victim_cfg);
    let neighbour_cfg = config(942, 12, 8);
    let neighbour_golden = solo_final_bytes(&neighbour_cfg);

    let mut manager = SessionManager::new(ServeConfig {
        pool_workers: 2,
        checkpoint_interval: 3,
        ..ServeConfig::default()
    })
    .unwrap();
    // Fault domains are per session: the plan is keyed to the victim's
    // domain, the neighbour (fault domain = its own seed) never sees it.
    let victim = manager
        .submit(SessionConfig::new("victim", victim_cfg.clone()).with_fault_domain(7001))
        .unwrap();
    let neighbour = manager
        .submit(SessionConfig::new("neighbour", neighbour_cfg.clone()))
        .unwrap();

    let plan = FaultPlan::new(7001).with(FaultEvent::CrashAtGeneration {
        rank: victim.id(),
        generation: 7,
    });
    let report = {
        let _chaos = arm(plan);
        manager.run().unwrap()
    };

    assert_eq!(victim.status(), SessionStatus::Completed);
    assert_eq!(
        victim.final_state_bytes().unwrap(),
        victim_golden,
        "crash recovery changed the trajectory"
    );
    assert_eq!(neighbour.status(), SessionStatus::Completed);
    assert_eq!(neighbour.final_state_bytes().unwrap(), neighbour_golden);

    let victim_row = &report.outcomes[victim.id()];
    assert_eq!(victim_row.respawns, 1);
    // Crashed at boundary 7, respawned from the cadence checkpoint at 6.
    assert_eq!(victim_row.replayed_generations, 1);
    let neighbour_row = &report.outcomes[neighbour.id()];
    assert_eq!(neighbour_row.respawns, 0);

    // Replayed generations publish no duplicate events: each generation
    // appears exactly once even through the crash.
    assert_eq!(
        victim
            .drain_events()
            .iter()
            .map(|e| e.generation)
            .collect::<Vec<_>>(),
        (0..10).collect::<Vec<_>>()
    );
}

#[test]
fn multi_tenant_timeline_exports_one_track_per_session() {
    let _guard = egd_obs::session_guard();
    egd_obs::enable_tracing();
    let mut manager = SessionManager::new(ServeConfig {
        pool_workers: 2,
        checkpoint_interval: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    for i in 0..3u64 {
        manager
            .submit(SessionConfig::new(
                format!("traced-{i}"),
                config(950 + i, 8, 4),
            ))
            .unwrap();
    }
    manager.run().unwrap();
    let log = egd_obs::collect();
    egd_obs::disable_tracing();

    let json = serve_timeline_json(&log, ExportOptions { zero_times: true });
    egd_obs::validate_trace_json(&json).unwrap();
    for track in ["\"session 0\"", "\"session 1\"", "\"session 2\""] {
        assert!(json.contains(track), "timeline lacks track {track}");
    }
    // Executor-internal task spans are filtered out of the tenant view.
    assert!(!json.contains("\"rank_task\""));
    assert!(json.contains("\"session\""));
    assert!(json.contains("\"checkpoint\""));
}

/// The acceptance-criteria regime: 32 concurrent sessions on a 4-worker
/// pool, including one suspend/resume cycle and one injected crash, every
/// session byte-identical to the same config run alone. Release-mode
/// `serve-smoke` CI territory.
#[test]
#[ignore = "release-tier stress: run with cargo test --release -- --ignored stress"]
fn stress_32_sessions_on_4_workers_all_byte_identical() {
    let configs: Vec<SimulationConfig> = (0..32)
        .map(|i| config(1000 + i, 8 + (i as usize % 4) * 2, 8 + i % 5))
        .collect();
    let goldens: Vec<Vec<u8>> = configs.iter().map(solo_final_bytes).collect();

    let mut manager = SessionManager::new(ServeConfig {
        pool_workers: 4,
        checkpoint_interval: 3,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut handles = Vec::new();
    for (i, cfg) in configs.iter().enumerate() {
        let engine = if i % 3 == 0 {
            EngineKind::Parallel { threads: 2 }
        } else {
            EngineKind::Sequential
        };
        let session = SessionConfig::new(format!("stress-{i}"), cfg.clone())
            .with_engine(engine)
            .with_fault_domain(8000 + i as u64);
        handles.push(manager.submit(session).unwrap());
    }

    // One tenant suspends mid-run, one crashes mid-run.
    handles[7].suspend_at(4);
    let plan = FaultPlan::new(8013).with(FaultEvent::CrashAtGeneration {
        rank: 13,
        generation: 7,
    });
    let report = {
        let _chaos = arm(plan);
        manager.run().unwrap()
    };
    assert_eq!(
        handles[7].status(),
        SessionStatus::Suspended { generation: 4 }
    );
    assert_eq!(report.outcomes[13].respawns, 1);

    manager.resume(7).unwrap();
    let report = manager.run().unwrap();

    for (i, (handle, golden)) in handles.iter().zip(&goldens).enumerate() {
        assert_eq!(
            handle.status(),
            SessionStatus::Completed,
            "session {i} did not complete: {:?}",
            handle.status()
        );
        assert_eq!(
            &handle.final_state_bytes().unwrap(),
            golden,
            "session {i} diverged from its solo run"
        );
        let events = handle.drain_events();
        assert_eq!(
            events.iter().map(|e| e.generation).collect::<Vec<_>>(),
            (0..configs[i].generations).collect::<Vec<_>>(),
            "session {i} event stream is not exactly-once"
        );
    }
    assert!(report.group_loads.iter().all(|&load| load == 0));
    assert!(report.admission_table_md().contains("stress-13"));
}
