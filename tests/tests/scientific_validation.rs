//! Scientific end-to-end validation: a scaled-down version of the paper's
//! §VI-A run must reproduce the emergence of Win-Stay-Lose-Shift, and the
//! supporting game-theoretic facts must hold.

use egd_analysis::census::NamedCensus;
use egd_analysis::kmeans::KMeans;
use egd_core::prelude::*;
use egd_parallel::simulation::ParallelSimulation;
use egd_parallel::thread_pool::ThreadConfig;

/// Runs the §VI-A validation dynamics for `generations` generations and
/// returns the final simulation state.
fn run_validation(generations: u64, seed: u64) -> ParallelSimulation {
    let config = SimulationConfig::builder()
        .memory(MemoryDepth::ONE)
        .num_ssets(50)
        .agents_per_sset(4)
        .rounds_per_game(200)
        .generations(generations)
        .pc_rate(0.5)
        .mutation_rate(0.02)
        .noise(0.02)
        .beta(SelectionIntensity::INTERMEDIATE)
        .seed(seed)
        .build()
        .unwrap();

    let mut sim = ParallelSimulation::with_fitness_mode(
        config,
        ThreadConfig::AUTO,
        FitnessMode::ExpectedValue,
    )
    .unwrap();
    sim.run();
    sim
}

/// A small but long validation run: memory-one pure strategies, noisy games,
/// learning-dominated rates (PC 50%, mutation 2% — see EXPERIMENTS.md for
/// why the paper's quoted 10%/5% are read this way). WSLS should end up the
/// most common strategy, as in Fig. 2 (the paper reports 85% at full scale;
/// at this scale we only require clear dominance).
///
/// Ignored by default (30,000 generations); run it with
/// `cargo test -- --ignored`. The fast gate is
/// [`wsls_emergence_smoke`].
#[test]
#[ignore = "long validation run (30k generations); covered by wsls_emergence_smoke"]
fn wsls_emerges_in_noisy_memory_one_population() {
    let sim = run_validation(30_000, 2013);

    let census = NamedCensus::of(sim.population());
    let wsls = census.fraction_of(NamedStrategy::WinStayLoseShift);
    let alld = census.fraction_of(NamedStrategy::AlwaysDefect);
    let allc = census.fraction_of(NamedStrategy::AlwaysCooperate);
    let tft = census.fraction_of(NamedStrategy::TitForTat);

    assert!(
        wsls >= 0.4,
        "WSLS should be prevalent, got {:.1}% (ALLD {:.1}%, ALLC {:.1}%, TFT {:.1}%)",
        wsls * 100.0,
        alld * 100.0,
        allc * 100.0,
        tft * 100.0
    );
    assert!(wsls > alld, "WSLS ({wsls}) should beat ALLD ({alld})");
    assert!(wsls > allc, "WSLS ({wsls}) should beat ALLC ({allc})");
    assert!(wsls > tft, "WSLS ({wsls}) should beat TFT ({tft})");

    // The Fig. 2b clustering view shows one dominant block.
    let clusters = KMeans::new(6, 100, 1)
        .unwrap()
        .cluster_population(sim.population())
        .unwrap();
    assert!(clusters.dominant_fraction() >= 0.4);
}

/// Fast smoke variant of the WSLS validation run: half the full horizon is
/// already past the WSLS sweep for this seed (the takeover happens between
/// generations 12k and 15k), so WSLS must lead, ahead of ALLD.
#[test]
fn wsls_emergence_smoke() {
    let sim = run_validation(15_000, 2013);
    let census = NamedCensus::of(sim.population());
    let wsls = census.fraction_of(NamedStrategy::WinStayLoseShift);
    let alld = census.fraction_of(NamedStrategy::AlwaysDefect);
    assert!(
        wsls >= 0.3,
        "WSLS should already lead after 15k generations, got {:.1}%",
        wsls * 100.0
    );
    assert!(wsls > alld, "WSLS ({wsls}) should beat ALLD ({alld})");
}

/// Fitness-scale follow-through (ROADMAP): a seeded three-point β sweep.
/// The Fermi rule acts on per-opponent-per-round relative fitness, so β is
/// comparable across population sizes; sweeping it crosses **two** phase
/// boundaries at this 4,000-generation horizon (30 SSets, noisy memory-one
/// games, PC 50% / mutation 2%):
///
/// * β ≤ 0.1 — neutral drift: imitation is near a coin flip, the population
///   stays close to its random mix (no dominant strategy, cooperation
///   propensity ≈ 0.575 for this seed);
/// * β = 1–5 — defection-dominated: selection is strong enough to reward
///   exploiters but the per-round fitness edge of WSLS-vs-itself is not yet
///   amplified enough to invade; ALLD reaches 90% and cooperation collapses
///   to ≈ 0.03;
/// * β = 10 — cooperation recovers: the amplified Fermi response lets WSLS
///   sweep within the same horizon (90% WSLS, cooperation ≈ 0.48 — WSLS
///   cooperates in half its states), the §VI-A endpoint that weaker
///   selection only reaches after ~3x more generations
///   ([`wsls_emergence_smoke`]).
///
/// EXPERIMENTS.md records the measured phase row.
#[test]
fn beta_sweep_crosses_the_neutral_to_selection_boundary() {
    let sweep = |beta: f64| {
        let config = SimulationConfig::builder()
            .memory(MemoryDepth::ONE)
            .num_ssets(30)
            .agents_per_sset(2)
            .rounds_per_game(50)
            .generations(4_000)
            .pc_rate(0.5)
            .mutation_rate(0.02)
            .noise(0.02)
            .beta(SelectionIntensity::new(beta).unwrap())
            .seed(20_130_521)
            .build()
            .unwrap();
        let mut sim = ParallelSimulation::with_fitness_mode(
            config,
            ThreadConfig::AUTO,
            FitnessMode::ExpectedValue,
        )
        .unwrap();
        sim.run();
        let census = NamedCensus::of(sim.population());
        (
            sim.population().mean_cooperation_propensity(),
            census.fraction_of(NamedStrategy::AlwaysDefect),
            census.fraction_of(NamedStrategy::WinStayLoseShift),
        )
    };

    let (weak_coop, weak_alld, weak_wsls) = sweep(0.01);
    let (mid_coop, mid_alld, _) = sweep(1.0);
    let (strong_coop, _, strong_wsls) = sweep(10.0);
    println!(
        "beta sweep: weak coop {weak_coop:.4}, intermediate coop {mid_coop:.4} \
         (ALLD {mid_alld:.2}), strong coop {strong_coop:.4} (WSLS {strong_wsls:.2})"
    );

    // Neutral drift: near the random-mix baseline, nothing dominant.
    assert!(
        (0.25..=0.75).contains(&weak_coop),
        "near-zero beta should drift, got {weak_coop:.4}"
    );
    assert!(weak_alld < 0.5 && weak_wsls < 0.5, "drift has no sweep");
    // Defection phase: ALLD dominates, cooperation collapses.
    assert!(
        mid_alld >= 0.5,
        "beta=1 should be ALLD-dominated, got {mid_alld:.2}"
    );
    assert!(
        mid_coop < weak_coop - 0.1 && mid_coop < strong_coop - 0.1,
        "defection phase has the cooperation minimum: \
         {weak_coop:.3} / {mid_coop:.3} / {strong_coop:.3}"
    );
    // Strong-selection phase: WSLS has already swept.
    assert!(
        strong_wsls >= 0.5,
        "beta=10 should be WSLS-dominated by 4k generations, got {strong_wsls:.2}"
    );
}

/// The initial population is a near-uniform random sample of the strategy
/// space (Fig. 2a): no strategy should start dominant.
#[test]
fn initial_population_is_not_dominated() {
    let config = SimulationConfig::validation_run(0.05, 9).unwrap();
    let population = config.initial_population().unwrap();
    let (_, fraction) = population.dominant_strategy();
    assert!(
        fraction < 0.2,
        "initial dominant fraction {fraction} should be small"
    );
    // With 16 possible memory-one strategies and 250 SSets, essentially all
    // strategies should be present.
    assert!(population.census().len() >= 12);
}

/// Under error-free play, TFT self-play and WSLS self-play both sustain full
/// cooperation; with errors only WSLS recovers — the mechanism that drives
/// the validation run's outcome.
#[test]
fn noise_separates_wsls_from_tft() {
    let clean = MarkovGame::new(MemoryDepth::ONE, 200, PayoffMatrix::PAPER, 0.0).unwrap();
    let noisy = MarkovGame::new(MemoryDepth::ONE, 200, PayoffMatrix::PAPER, 0.02).unwrap();
    let wsls = StrategyKind::Pure(NamedStrategy::WinStayLoseShift.to_pure());
    let tft = StrategyKind::Pure(NamedStrategy::TitForTat.to_pure());

    let clean_tft = clean.finite_horizon(&tft, &tft).unwrap().payoff_a;
    let clean_wsls = clean.finite_horizon(&wsls, &wsls).unwrap().payoff_a;
    assert!((clean_tft - 600.0).abs() < 1e-6);
    assert!((clean_wsls - 600.0).abs() < 1e-6);

    let noisy_tft = noisy.finite_horizon(&tft, &tft).unwrap().payoff_a;
    let noisy_wsls = noisy.finite_horizon(&wsls, &wsls).unwrap().payoff_a;
    assert!(
        noisy_wsls > noisy_tft + 50.0,
        "noisy WSLS self-play ({noisy_wsls}) should clearly beat noisy TFT self-play ({noisy_tft})"
    );
}

/// Deeper memory does not change the 16-fold structure of the memory-one
/// strategies it embeds: a lifted WSLS still dominates a lifted ALLD
/// population under noise (sanity check that the extended-memory machinery
/// preserves the memory-one science).
#[test]
fn lifted_memory_three_wsls_still_beats_alld() {
    let memory = MemoryDepth::THREE;
    let game = MarkovGame::new(memory, 200, PayoffMatrix::PAPER, 0.01).unwrap();
    let wsls = StrategyKind::Pure(
        NamedStrategy::WinStayLoseShift
            .to_pure_with_memory(memory)
            .unwrap(),
    );
    let alld = StrategyKind::Pure(
        NamedStrategy::AlwaysDefect
            .to_pure_with_memory(memory)
            .unwrap(),
    );

    let wsls_vs_wsls = game.stationary(&wsls, &wsls).unwrap().payoff_a;
    let alld_vs_wsls = game.stationary(&alld, &wsls).unwrap().payoff_a;
    let wsls_vs_alld = game.stationary(&wsls, &alld).unwrap().payoff_a;
    let alld_vs_alld = game.stationary(&alld, &alld).unwrap().payoff_a;

    // Pairwise-invasion condition: in a WSLS world, WSLS does better than an
    // ALLD invader would.
    assert!(wsls_vs_wsls > alld_vs_wsls);
    // And ALLD's own world is poor compared to WSLS's (per-round payoffs).
    assert!(wsls_vs_wsls > alld_vs_alld + 1.0);
    // WSLS is not a sucker against ALLD for long: against ALLD it alternates
    // punishment and sucker rounds, so its per-round payoff stays near 0.5.
    assert!(wsls_vs_alld > 0.4);
}

/// The history recording machinery supports the Fig. 2 narrative: dominance
/// grows over the course of the run.
#[test]
fn dominance_grows_over_time() {
    // The PC rate is kept low so fixation takes longer than the first
    // recording interval: at higher rates a 40-SSet population is already
    // near-converged by generation 1,000 and the recorded series would only
    // show the flat tail.
    let config = SimulationConfig::builder()
        .memory(MemoryDepth::ONE)
        .num_ssets(40)
        .agents_per_sset(2)
        .rounds_per_game(100)
        .generations(6_000)
        .pc_rate(0.05)
        .mutation_rate(0.02)
        .noise(0.01)
        .seed(77)
        .build()
        .unwrap();
    let mut sim = ParallelSimulation::with_fitness_mode(
        config,
        ThreadConfig::AUTO,
        FitnessMode::ExpectedValue,
    )
    .unwrap();
    sim.set_record_interval(1_000);
    let report = sim.run();
    let series = egd_analysis::timeseries::TimeSeries::from_records(report.history);
    let dominance = series.dominant_fraction_series();
    assert_eq!(dominance.len(), 6);
    let early = dominance[0].1;
    let late = dominance.last().unwrap().1;
    assert!(
        late > early,
        "dominant fraction should grow: early {early}, late {late}"
    );
}
