//! Property-based tests on the core invariants of the model, spanning
//! several crates.

use egd_analysis::kmeans::{strategy_embedding, KMeans};
use egd_core::prelude::*;
use egd_parallel::kernel::{GameKernel, KernelVariant};
use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;

fn arb_memory() -> impl PropStrategy<Value = MemoryDepth> {
    (1u32..=4).prop_map(|n| MemoryDepth::new(n).unwrap())
}

fn arb_pure_strategy(memory: MemoryDepth) -> impl PropStrategy<Value = PureStrategy> {
    proptest::collection::vec(any::<bool>(), memory.num_states()).prop_map(move |bits| {
        let moves: Vec<Move> = bits.into_iter().map(Move::from).collect();
        PureStrategy::from_moves(memory, &moves).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// State encode/decode round-trips for every memory depth.
    #[test]
    fn state_encoding_round_trips(memory in arb_memory(), raw in any::<u32>()) {
        let space = StateSpace::new(memory);
        let state = StateIndex(raw % memory.num_states() as u32);
        let rounds = space.decode(state).unwrap();
        prop_assert_eq!(space.encode(&rounds).unwrap(), state);
        // Perspective swap is an involution.
        prop_assert_eq!(space.swap_perspective(space.swap_perspective(state)), state);
    }

    /// The three game kernels agree on every random strategy pair.
    #[test]
    fn kernels_agree(seed in 0u64..1_000) {
        let memory = MemoryDepth::TWO;
        let mut rng = egd_core::rng::stream(seed, egd_core::rng::StreamKind::Auxiliary, 0);
        let a = PureStrategy::random(memory, &mut rng);
        let b = PureStrategy::random(memory, &mut rng);
        let reference = GameKernel::new(KernelVariant::Optimized, memory, 64, PayoffMatrix::PAPER)
            .play(&a, &b)
            .unwrap();
        for variant in [KernelVariant::Naive, KernelVariant::Indexed] {
            let outcome = GameKernel::new(variant, memory, 64, PayoffMatrix::PAPER)
                .play(&a, &b)
                .unwrap();
            prop_assert!((outcome.fitness_a - reference.fitness_a).abs() < 1e-9);
            prop_assert!((outcome.fitness_b - reference.fitness_b).abs() < 1e-9);
        }
    }

    /// Total payoff of any deterministic game is bounded by the payoff matrix
    /// and the exact Markov expectation matches the simulated outcome.
    #[test]
    fn game_payoffs_are_bounded_and_match_markov(
        (a, b) in arb_memory().prop_flat_map(|m| (arb_pure_strategy(m), arb_pure_strategy(m)))
    ) {
        let memory = a.memory();
        let rounds = 40u32;
        let game = IpdGame::new(memory, rounds, PayoffMatrix::PAPER, 0.0).unwrap();
        let outcome = game.play_pure(&a, &b).unwrap();
        let max_per_round = PayoffMatrix::PAPER.max_payoff();
        prop_assert!(outcome.fitness_a >= 0.0 && outcome.fitness_a <= max_per_round * rounds as f64);
        prop_assert!(outcome.fitness_b >= 0.0 && outcome.fitness_b <= max_per_round * rounds as f64);
        prop_assert!(outcome.cooperations_a <= rounds && outcome.cooperations_b <= rounds);

        let markov = MarkovGame::new(memory, rounds, PayoffMatrix::PAPER, 0.0).unwrap();
        let exact = markov
            .finite_horizon(&StrategyKind::Pure(a.clone()), &StrategyKind::Pure(b.clone()))
            .unwrap();
        prop_assert!((exact.payoff_a - outcome.fitness_a).abs() < 1e-6);
        prop_assert!((exact.payoff_b - outcome.fitness_b).abs() < 1e-6);
    }

    /// The Fermi probability is always a probability, is monotone in the
    /// payoff difference, and is complementary under exchanging the roles.
    #[test]
    fn fermi_properties(beta in 0.0f64..20.0, a in -50.0f64..50.0, b in -50.0f64..50.0) {
        let beta = SelectionIntensity::new(beta).unwrap();
        let p = fermi_probability(beta, a, b);
        let q = fermi_probability(beta, b, a);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((p + q - 1.0).abs() < 1e-9);
        if a > b {
            prop_assert!(p >= 0.5);
        }
    }

    /// Lifting a strategy to a deeper memory never changes its behaviour on
    /// the recent history it already understood.
    #[test]
    fn lifting_preserves_behaviour(
        strategy in arb_pure_strategy(MemoryDepth::ONE),
        deeper in 2u32..=4
    ) {
        let target = MemoryDepth::new(deeper).unwrap();
        let lifted = strategy.lifted_to(target).unwrap();
        let space = StateSpace::new(target);
        for state in space.states() {
            let recent = StateIndex(state.0 & MemoryDepth::ONE.state_mask() as u32);
            prop_assert_eq!(lifted.move_for(state), strategy.move_for(recent));
        }
    }

    /// A population census always accounts for every SSet, and the dominant
    /// fraction is consistent with the census.
    #[test]
    fn census_accounts_for_every_sset(seed in 0u64..500, num_ssets in 2usize..40) {
        let population = Population::random(
            StrategySpace::pure(MemoryDepth::ONE),
            num_ssets,
            2,
            seed,
        )
        .unwrap();
        let census = population.census();
        let total: usize = census.iter().map(|e| e.count).sum();
        prop_assert_eq!(total, num_ssets);
        let (_, fraction) = population.dominant_strategy();
        prop_assert!((fraction - census[0].count as f64 / num_ssets as f64).abs() < 1e-12);
    }

    /// Strategy embeddings used by the Fig. 2 clustering have one entry per
    /// state, all of them probabilities, and k-means assigns every strategy
    /// to a cluster.
    #[test]
    fn embeddings_and_clustering_are_well_formed(seed in 0u64..200) {
        let population = Population::random(
            StrategySpace::pure(MemoryDepth::TWO),
            12,
            1,
            seed,
        )
        .unwrap();
        for strategy in population.strategies() {
            let embedding = strategy_embedding(strategy);
            prop_assert_eq!(embedding.len(), 16);
            prop_assert!(embedding.iter().all(|p| (0.0..=1.0).contains(p)));
        }
        let result = KMeans::new(3, 20, seed).unwrap().cluster_population(&population).unwrap();
        prop_assert_eq!(result.assignments.len(), 12);
        prop_assert_eq!(result.sizes.iter().sum::<usize>(), 12);
    }

    /// The Nature Agent's decisions never reference SSets outside the
    /// population and applying them preserves the population size.
    #[test]
    fn nature_decisions_are_in_range(seed in 0u64..300, generation in 0u64..1_000) {
        let config = SimulationConfig::builder()
            .num_ssets(10)
            .agents_per_sset(2)
            .pc_rate(0.8)
            .mutation_rate(0.5)
            .seed(seed)
            .build()
            .unwrap();
        let nature = config.nature_agent().unwrap();
        let mut population = config.initial_population().unwrap();
        let fitness: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let decision = nature.decide(generation, &fitness);
        if let Some(pc) = &decision.pairwise {
            prop_assert!(pc.teacher < 10 && pc.learner < 10);
            prop_assert_ne!(pc.teacher, pc.learner);
        }
        if let Some(m) = &decision.mutation {
            prop_assert!(m.sset < 10);
        }
        nature.apply(&decision, &mut population).unwrap();
        prop_assert_eq!(population.num_ssets(), 10);
    }

    /// Any cost-weighted partition of `n` items across `w` workers covers
    /// every index exactly once — contiguous, ordered, no gaps or overlaps —
    /// for arbitrary weights (zeros included) and any worker count
    /// (including `w > n`).
    #[test]
    fn weighted_partition_covers_every_index_exactly_once(
        weights in proptest::collection::vec(0u64..5_000_000, 0..160),
        workers in 1usize..24,
    ) {
        let ranges = egd_sched::weighted_ranges(&weights, workers);
        prop_assert_eq!(ranges.len(), workers);
        let mut next = 0usize;
        for range in &ranges {
            prop_assert_eq!(range.start, next, "contiguous, in order");
            prop_assert!(range.end >= range.start);
            next = range.end;
        }
        prop_assert_eq!(next, weights.len(), "every index covered");
        // The live WeightedSource segmentation agrees with the pure math.
        let segments = egd_sched::source::WorkSource::split_initial(
            egd_sched::WeightedSource::new(&weights),
            workers,
        );
        let total: usize = segments.iter().map(egd_sched::source::WorkSource::len).sum();
        prop_assert_eq!(total, weights.len());
    }

    /// The weighted partition balances arbitrary positive weights to within
    /// one heaviest item per worker share.
    #[test]
    fn weighted_partition_is_cost_balanced(
        weights in proptest::collection::vec(1u64..100_000, 1..160),
        workers in 1usize..12,
    ) {
        let ranges = egd_sched::weighted_ranges(&weights, workers);
        let total: u64 = weights.iter().sum();
        let heaviest = *weights.iter().max().unwrap();
        for range in &ranges {
            let cost: u64 = weights[range.clone()].iter().sum();
            prop_assert!(
                cost <= total / workers as u64 + heaviest + 1,
                "segment {range:?} holds {cost} of {total} over {workers} workers"
            );
        }
    }
}

/// Deterministic pathological shapes for the weighted partition, spelled out
/// so a proptest generator change can never silently stop covering them.
#[test]
fn weighted_partition_pathological_cases() {
    let covers = |weights: &[u64], workers: usize| {
        let ranges = egd_sched::weighted_ranges(weights, workers);
        assert_eq!(ranges.len(), workers, "{weights:?} over {workers}");
        let mut next = 0usize;
        for range in &ranges {
            assert_eq!(range.start, next, "{weights:?} over {workers}");
            next = range.end;
        }
        assert_eq!(next, weights.len(), "{weights:?} over {workers}");
        ranges
    };
    // All-zero weights (uniform fallback).
    covers(&[0; 13], 4);
    // A single heavy item among zeros gets a worker of its own.
    let mut single = vec![0u64; 11];
    single[5] = u64::MAX / 2;
    covers(&single, 3);
    // More workers than items: trailing workers get empty segments.
    let thin = covers(&[7, 7, 7], 9);
    assert!(thin.iter().filter(|r| r.is_empty()).count() >= 6);
    // Empty input, single item, saturating-scale weights.
    covers(&[], 5);
    covers(&[u64::MAX], 4);
    covers(&[u64::MAX, u64::MAX, 1], 2);
}
