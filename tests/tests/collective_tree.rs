//! Result-identity tests for the tree-structured collectives.
//!
//! The binomial-tree rework of `egd_cluster::mpi` changes *how* collectives
//! move data, not *what* they return: broadcast delivers the root's value to
//! every rank, gather returns the values in strict rank order at the root
//! (empty elsewhere), and `allreduce_sum` folds contributions in strict rank
//! order — bit-identical to the retired flat implementations for every world
//! size, root choice and worker-pool shape. These tests pin that contract
//! over the awkward shapes: non-power-of-two worlds, root ≠ 0, single-rank
//! worlds, and fewer ranks than pool workers.

use egd_cluster::collective;
use egd_cluster::mpi::SimWorld;

/// World sizes that cover the binomial tree's corner cases: 1 (degenerate),
/// powers of two, one above/below powers of two, and odd composites.
const SIZES: [usize; 13] = [1, 2, 3, 5, 7, 8, 9, 16, 17, 31, 33, 64, 100];

/// Roots to rotate the tree through for a given size: first, second, middle
/// and last rank (deduplicated for tiny worlds by the `% size`).
fn roots(size: usize) -> [usize; 4] {
    [0, 1 % size, (size / 2) % size, size - 1]
}

#[test]
fn broadcast_matches_flat_semantics_for_all_shapes() {
    for size in SIZES {
        for root in roots(size) {
            for workers in [1usize, 3] {
                let world = SimWorld::new(size).unwrap().workers(workers);
                let (results, stats) = world
                    .run(move |mut comm| async move {
                        let value = if comm.rank() == root {
                            Some((root as u64) << 32 | 0xC0FFEE)
                        } else {
                            None
                        };
                        comm.broadcast(root, value).await
                    })
                    .unwrap();
                assert_eq!(results.len(), size);
                for r in results {
                    assert_eq!(r, (root as u64) << 32 | 0xC0FFEE, "size {size} root {root}");
                }
                let snap = stats.snapshot();
                assert_eq!(snap.broadcasts, 1);
                assert!(
                    snap.max_root_fanout <= u64::from(collective::stages(size)),
                    "size {size} root {root}: fanout {}",
                    snap.max_root_fanout
                );
            }
        }
    }
}

#[test]
fn gather_is_rank_ordered_at_every_root_and_shape() {
    for size in SIZES {
        for root in roots(size) {
            for workers in [1usize, 3] {
                let world = SimWorld::new(size).unwrap().workers(workers);
                let (results, stats) = world
                    .run(move |mut comm| async move {
                        // A value that encodes the sender, so ordering bugs
                        // (vrank vs rank order) cannot cancel out.
                        let value = comm.rank() * 1_000 + 7;
                        comm.gather(root, &value).await
                    })
                    .unwrap();
                let expected: Vec<usize> = (0..size).map(|r| r * 1_000 + 7).collect();
                for (rank, gathered) in results.iter().enumerate() {
                    if rank == root {
                        assert_eq!(gathered, &expected, "size {size} root {root}");
                    } else {
                        assert!(gathered.is_empty(), "size {size} root {root} rank {rank}");
                    }
                }
                let snap = stats.snapshot();
                assert_eq!(snap.gathers, 1);
                assert!(snap.max_root_fanout <= u64::from(collective::stages(size)));
            }
        }
    }
}

#[test]
fn allreduce_sum_is_bit_identical_to_the_rank_ordered_fold() {
    // Float addition is not associative, so the tree must NOT change the
    // summation order: the contract is the sequential rank-0..n-1 fold,
    // independent of tree shape and worker-pool size.
    for size in SIZES {
        // Contributions chosen to be order-sensitive: wildly different
        // magnitudes per rank.
        let contributions: Vec<Vec<f64>> = (0..size)
            .map(|rank| {
                vec![
                    (rank as f64 + 0.1) * 10f64.powi((rank % 7) as i32 - 3),
                    1.0 / (rank as f64 + 3.0),
                ]
            })
            .collect();
        let mut expected = [0.0f64; 2];
        for c in &contributions {
            for (t, v) in expected.iter_mut().zip(c) {
                *t += v;
            }
        }
        let mut seen: Option<Vec<u64>> = None;
        for workers in [1usize, 2, 5] {
            let contributions = contributions.clone();
            let world = SimWorld::new(size).unwrap().workers(workers);
            let (results, _) = world
                .run(move |mut comm| {
                    let mine = contributions[comm.rank()].clone();
                    async move { comm.allreduce_sum(&mine).await }
                })
                .unwrap();
            for r in &results {
                let bits: Vec<u64> = r.iter().map(|v| v.to_bits()).collect();
                // Bit-identical to the sequential fold...
                assert_eq!(
                    bits,
                    expected.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "size {size} workers {workers}"
                );
                // ...and therefore bit-identical across pool shapes.
                match &seen {
                    Some(first) => assert_eq!(&bits, first),
                    None => seen = Some(bits),
                }
            }
        }
    }
}

#[test]
fn collectives_work_with_fewer_ranks_than_workers() {
    // A 2-rank world on an 8-worker pool: most workers idle, the tree is a
    // single edge, and every collective still returns the flat result.
    let world = SimWorld::new(2).unwrap().workers(8);
    let (results, stats) = world
        .run(|mut comm| async move {
            let value = if comm.rank() == 1 { Some(41u32) } else { None };
            let b = comm.broadcast(1, value).await?;
            let g = comm.gather(0, &(comm.rank() as u32 + b)).await?;
            let s = comm.allreduce_sum(&[comm.rank() as f64]).await?;
            comm.barrier().await?;
            Ok((b, g, s))
        })
        .unwrap();
    assert_eq!(results[0], (41, vec![41, 42], vec![1.0]));
    assert_eq!(results[1], (41, vec![], vec![1.0]));
    let snap = stats.snapshot();
    assert_eq!(
        (snap.broadcasts, snap.gathers, snap.barriers),
        (2, 2, 2) // allreduce = gather + broadcast; barrier is only a barrier
    );
    assert_eq!(snap.max_root_fanout, 1);
}

#[test]
fn single_rank_world_collectives_are_no_ops() {
    let world = SimWorld::new(1).unwrap();
    let (results, stats) = world
        .run(|mut comm| async move {
            let b = comm.broadcast(0, Some(9u8)).await?;
            let g = comm.gather(0, &b).await?;
            let s = comm.allreduce_sum(&[2.5]).await?;
            comm.barrier().await?;
            Ok((b, g, s))
        })
        .unwrap();
    assert_eq!(results[0], (9, vec![9], vec![2.5]));
    assert_eq!(stats.snapshot().max_root_fanout, 0);
}

#[test]
fn collective_root_out_of_range_errors() {
    let world = SimWorld::new(3).unwrap();
    let err = world
        .run(|mut comm| async move { comm.broadcast(7, Some(1u8)).await })
        .unwrap_err();
    assert!(err.to_string().contains("out of range"), "{err}");
    let err = world
        .run(|mut comm| async move { comm.gather(3, &1u8).await })
        .unwrap_err();
    assert!(err.to_string().contains("out of range"), "{err}");
}

#[test]
fn repeated_mixed_collectives_stay_consistent() {
    // Back-to-back collectives of different types with rotating roots: the
    // per-link FIFO mailboxes must keep same-tag messages of consecutive
    // operations correctly ordered.
    let size = 13usize;
    let world = SimWorld::new(size).unwrap().workers(3);
    let (results, _) = world
        .run(move |mut comm| async move {
            let mut acc: u64 = 0;
            for round in 0..20u64 {
                let root = (round as usize * 5) % size;
                let value = if comm.rank() == root {
                    Some(round * 100)
                } else {
                    None
                };
                let b = comm.broadcast(root, value).await?;
                let g = comm.gather(root, &(b + comm.rank() as u64)).await?;
                if comm.rank() == root {
                    acc += g.iter().sum::<u64>();
                }
                comm.barrier().await?;
            }
            Ok(acc)
        })
        .unwrap();
    // Each root's round contributes size*b + sum(0..size); rounds spread the
    // root around, so total over all ranks is the closed-form sum.
    let total: u64 = results.iter().sum();
    let expected: u64 = (0..20u64)
        .map(|round| round * 100 * size as u64 + (size as u64 - 1) * size as u64 / 2)
        .sum();
    assert_eq!(total, expected);
}
