//! Run the distributed algorithm over simulated MPI ranks and sweep the
//! analytic scaling model — a miniature of the paper's §VI-B/C studies.
//!
//! ```text
//! cargo run --release --example cluster_scaling
//! ```

use egd::prelude::*;

fn main() {
    // --- Part 1: real message-passing execution over simulated ranks. ---
    let config = SimulationConfig::builder()
        .memory(MemoryDepth::ONE)
        .num_ssets(48)
        .agents_per_sset(4)
        .rounds_per_game(100)
        .generations(300)
        .noise(0.01)
        .seed(7)
        .build()
        .expect("valid configuration");

    println!("Distributed execution over simulated ranks (rank 0 = Nature Agent):");
    for workers in [1usize, 2, 4, 8] {
        let executor = DistributedExecutor::new(
            config.clone(),
            DistributedConfig::with_workers(workers)
                .fitness_mode(FitnessMode::ExpectedValue)
                .trace_interval(50),
        )
        .expect("executor");
        let summary = executor.run().expect("distributed run");
        let traffic = summary.traffic;
        println!(
            "  {workers:>2} workers: {} strategy changes, {} p2p msgs ({} B), {} broadcasts ({} B), dominant = {:.0}%",
            summary.generations_with_change,
            traffic.p2p_messages,
            traffic.p2p_bytes,
            traffic.broadcasts,
            traffic.broadcast_bytes,
            summary.population.dominant_strategy().1 * 100.0
        );
    }

    // --- Part 2: analytic scaling to Blue Gene scale. ---
    println!("\nWeak scaling, memory-six, 4,096 SSets per processor (Fig. 6a analogue):");
    let harness = ScalingHarness::blue_gene_p();
    let weak = harness
        .weak_scaling(
            &Workload::paper(0, MemoryDepth::SIX, 20),
            4096,
            &[1024, 4096, 16_384, 65_536, 294_912],
        )
        .expect("weak scaling");
    println!("  processors   time(s)   efficiency(%)");
    for point in &weak {
        println!(
            "  {:>10}   {:>7.2}   {:>12.2}",
            point.processors, point.time_seconds, point.efficiency_percent
        );
    }

    println!("\nStrong scaling, 32,768 SSets, memory-six (Fig. 6b analogue):");
    let strong = ScalingHarness::blue_gene_p()
        .with_sset_splitting(1.2)
        .strong_scaling(
            &Workload::paper(32_768, MemoryDepth::SIX, 20),
            &[1024, 2048, 8192, 16_384, 262_144],
        )
        .expect("strong scaling");
    println!("  processors   speedup   efficiency(%)   SSets/processor");
    for point in &strong {
        println!(
            "  {:>10}   {:>7.1}   {:>12.2}   {:>15.3}",
            point.processors, point.speedup, point.efficiency_percent, point.ssets_per_processor
        );
    }
}
