//! Quickstart: evolve a small memory-one population and report what it
//! converged to.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use egd::prelude::*;

fn main() {
    // A small world: 64 SSets of 4 agents, memory-one strategies, the paper's
    // payoffs [3, 0, 4, 1], 200-round games with 1% execution noise.
    let config = SimulationConfig::builder()
        .memory(MemoryDepth::ONE)
        .num_ssets(64)
        .agents_per_sset(4)
        .rounds_per_game(200)
        .generations(20_000)
        .pc_rate(0.4)
        .mutation_rate(0.02)
        .noise(0.01)
        .beta(SelectionIntensity::INTERMEDIATE)
        .seed(2013)
        .build()
        .expect("valid configuration");

    println!(
        "Population: {} agents in {} SSets ({})",
        config.total_agents(),
        config.num_ssets,
        config.memory
    );
    println!(
        "Strategy space: {} pure strategies",
        config.strategy_space().num_pure_strategies_decimal()
    );

    // Run on all available cores; expected-value fitness keeps the noisy run
    // fast without changing the expected dynamics.
    let mut sim = ParallelSimulation::with_fitness_mode(
        config,
        ThreadConfig::AUTO,
        FitnessMode::ExpectedValue,
    )
    .expect("simulation construction");
    sim.set_record_interval(500);
    let report = sim.run();

    println!(
        "\nRan {} generations on {} threads",
        report.generations_run, report.threads
    );
    println!(
        "Game play {:.2?}, population dynamics {:.2?}",
        report.timing.game_play, report.timing.dynamics
    );

    // What does the population look like now?
    let census = NamedCensus::of(sim.population());
    println!("\nFinal population composition:");
    for (name, fraction) in &census.fractions {
        println!("  {name:<10} {:5.1}%", fraction * 100.0);
    }
    println!("  {:<10} {:5.1}%", "other", census.other * 100.0);
    println!(
        "\nCooperation propensity: {:.3}",
        population_cooperation_index(sim.population())
    );

    let (dominant, fraction) = sim.population().dominant_strategy();
    println!(
        "Dominant strategy: {dominant} held by {:.1}% of SSets",
        fraction * 100.0
    );
}
