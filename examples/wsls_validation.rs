//! Scaled-down reproduction of the paper's validation run (§VI-A, Fig. 2).
//!
//! The paper runs 5,000 SSets / 20,000 agents of memory-one pure strategies
//! for 10^7 generations and reports that 85% of SSets end up holding
//! Win-Stay-Lose-Shift ([0101] in the paper's state ordering). This example
//! runs the same dynamics at a configurable scale (default 2% of the paper's
//! population with proportionally fewer generations) and prints the initial
//! vs. final strategy composition plus a k-means cluster summary of the final
//! population — the textual equivalent of Fig. 2a/2b.
//!
//! ```text
//! cargo run --release --example wsls_validation -- [scale]
//! ```

use egd::prelude::*;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02);

    let config = SimulationConfig::validation_run(scale, 42).expect("valid scale");
    println!(
        "Validation run at {:.1}% scale: {} SSets, {} agents, {} generations, {} noise",
        scale * 100.0,
        config.num_ssets,
        config.total_agents(),
        config.generations,
        config.noise
    );

    let mut sim = ParallelSimulation::with_fitness_mode(
        config.clone(),
        ThreadConfig::AUTO,
        FitnessMode::ExpectedValue,
    )
    .expect("simulation construction");

    // Fig. 2a: the initial population is a uniform random sample of the 16
    // memory-one strategies.
    let initial = NamedCensus::of(sim.population());
    println!("\nInitial population (Fig. 2a analogue):");
    print_census(&initial);

    let report = sim.run();

    // Fig. 2b: the final population, clustered.
    let final_census = NamedCensus::of(sim.population());
    println!(
        "\nFinal population after {} generations (Fig. 2b analogue):",
        report.generations_run
    );
    print_census(&final_census);

    let kmeans = KMeans::new(8, 100, 7).expect("valid k-means config");
    let clusters = kmeans
        .cluster_population(sim.population())
        .expect("clustering");
    println!(
        "\nK-means clustering (k=8): dominant cluster holds {:.1}% of SSets ({} iterations)",
        clusters.dominant_fraction() * 100.0,
        clusters.iterations
    );

    let wsls_fraction = final_census.fraction_of(NamedStrategy::WinStayLoseShift);
    println!(
        "\nWSLS fraction: {:.1}% (paper reports 85% at full scale)",
        wsls_fraction * 100.0
    );
    if wsls_fraction > 0.5 {
        println!("=> WSLS dominates the population, consistent with Nowak & Sigmund and Fig. 2.");
    } else {
        println!(
            "=> WSLS has not (yet) taken over at this scale; increase the scale or generations."
        );
    }
}

fn print_census(census: &NamedCensus) {
    for (name, fraction) in &census.fractions {
        println!("  {name:<10} {:5.1}%", fraction * 100.0);
    }
    println!("  {:<10} {:5.1}%", "other", census.other * 100.0);
}
