//! How the memory depth affects game-play cost (the science behind Fig. 5).
//!
//! For each memory depth 1..=6 this example measures the real per-game cost
//! of the three kernel variants on the host machine, and shows how deeper
//! memories widen the strategy space while leaving the per-round work an O(1)
//! table lookup (the cost growth comes from state handling, not from the
//! strategy count).
//!
//! ```text
//! cargo run --release --example memory_scaling
//! ```

use egd::prelude::*;
use std::time::Instant;

fn main() {
    println!("memory  states  strategies      naive(us)  indexed(us)  optimized(us)");
    println!("----------------------------------------------------------------------");
    for memory in MemoryDepth::PAPER_RANGE {
        let space = StrategySpace::pure(memory);
        let mut rng = egd::core::rng::stream(
            7,
            egd::core::rng::StreamKind::Auxiliary,
            memory.steps() as u64,
        );
        let a = PureStrategy::random(memory, &mut rng);
        let b = PureStrategy::random(memory, &mut rng);

        let mut row = format!(
            "{:>6}  {:>6}  {:>14}",
            memory.steps(),
            memory.num_states(),
            format!("2^{}", space.log2_num_pure_strategies())
        );
        for variant in KernelVariant::LADDER {
            // The naive kernel at memory-six scans 4,096 states per round;
            // keep the measurement time bounded by lowering repetitions.
            let reps = match variant {
                KernelVariant::Naive if memory.steps() >= 5 => 5,
                KernelVariant::Naive => 20,
                _ => 200,
            };
            let kernel = GameKernel::paper_defaults(variant, memory);
            let start = Instant::now();
            for _ in 0..reps {
                let _ = kernel.play(&a, &b).expect("kernel play");
            }
            let micros = start.elapsed().as_secs_f64() * 1e6 / reps as f64;
            row.push_str(&format!("  {micros:>11.2}"));
        }
        println!("{row}");
    }

    println!("\nModelled per-generation compute/comm split on 2,048 Blue Gene/P processors");
    println!("(2,048 SSets, 20 generations — the Fig. 5 configuration):");
    let harness = ScalingHarness::blue_gene_p();
    let workload = Workload::paper(2048, MemoryDepth::ONE, 20);
    println!("memory  compute(s)  comm(s)");
    for (memory, estimate) in harness
        .memory_step_breakdown(2048, &workload, &MemoryDepth::PAPER_RANGE)
        .expect("cost model")
    {
        println!(
            "{:>6}  {:>10.3}  {:>7.4}",
            memory.steps(),
            estimate.compute_seconds,
            estimate.comm_seconds
        );
    }
}
