//! Explore how the classic strategies fare against each other, with and
//! without execution noise — the game-theoretic background of §III.
//!
//! Prints a round-robin payoff matrix (exact, via the Markov analyser) for
//! the named memory-one strategies, first without noise and then with 1%
//! execution errors, highlighting why WSLS displaces TFT once errors exist.
//!
//! ```text
//! cargo run --release --example strategy_explorer
//! ```

use egd::prelude::*;

fn classics() -> Vec<NamedStrategy> {
    NamedStrategy::ALL
        .into_iter()
        .filter(|s| {
            s.native_memory() == MemoryDepth::ONE && *s != NamedStrategy::SuspiciousTitForTat
        })
        .collect()
}

fn print_matrix(noise: f64) {
    let strategies = classics();
    let game =
        MarkovGame::new(MemoryDepth::ONE, 200, PayoffMatrix::PAPER, noise).expect("valid game");

    print!("{:>10}", "");
    for opponent in &strategies {
        print!("{:>10}", opponent.short_name());
    }
    println!();
    for me in &strategies {
        print!("{:>10}", me.short_name());
        let mine = StrategyKind::Pure(me.to_pure());
        for opponent in &strategies {
            let theirs = StrategyKind::Pure(opponent.to_pure());
            let payoffs = game
                .finite_horizon(&mine, &theirs)
                .expect("markov analysis");
            print!("{:>10.0}", payoffs.payoff_a);
        }
        println!();
    }

    // Who wins the round robin?
    let mut totals: Vec<(NamedStrategy, f64)> = strategies
        .iter()
        .map(|me| {
            let mine = StrategyKind::Pure(me.to_pure());
            let total: f64 = strategies
                .iter()
                .map(|opponent| {
                    let theirs = StrategyKind::Pure(opponent.to_pure());
                    game.finite_horizon(&mine, &theirs).unwrap().payoff_a
                })
                .sum();
            (*me, total)
        })
        .collect();
    totals.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nRound-robin ranking:");
    for (strategy, total) in totals {
        println!("  {:<10} {total:>8.0}", strategy.short_name());
    }
}

fn main() {
    println!("Expected total payoff over a 200-round Iterated Prisoner's Dilemma");
    println!("(row player vs column player, payoffs [R,S,T,P] = [3,0,4,1])\n");

    println!("=== No execution errors ===");
    print_matrix(0.0);

    println!("\n=== 1% execution errors ===");
    print_matrix(0.01);

    println!("\nNote how TFT self-play collapses under noise while WSLS self-play");
    println!("recovers full cooperation — the reason the paper's validation run");
    println!("(and Nowak & Sigmund 1993) converges on Win-Stay-Lose-Shift.");
}
