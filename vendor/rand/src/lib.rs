//! Vendored offline stand-in for `rand` 0.8.
//!
//! Implements the slice of the `rand` API this workspace uses: the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits, uniform sampling over
//! ranges, and [`seq::SliceRandom`]. All sampling is derived from
//! `next_u64`, so any generator (here: `rand_pcg`'s `Pcg64Mcg`) behaves
//! deterministically and identically across platforms. The numeric
//! algorithms are simple and explicit rather than bit-compatible with the
//! real `rand` crate — the workspace's determinism guarantees are *internal*
//! (same seed ⇒ same run), not tied to upstream `rand`'s exact streams.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values drawable from the "standard" distribution of a generator
/// (uniform bits for integers, uniform `[0, 1)` for floats).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl StandardSample for $ty {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a value type can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start + (rng.next_u64() % (span + 1)) as $ty
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                (start as i64).wrapping_add((rng.next_u64() % (span + 1)) as i64) as $ty
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = <$ty as StandardSample>::standard_sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let u = <$ty as StandardSample>::standard_sample(rng);
                start + u * (end - start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (uniform bits for
    /// integers, uniform `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        f64::standard_sample(self) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        (self.next_u64() % denominator as u64) < numerator as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded with SplitMix64 so that
    /// low-entropy seeds still produce well-mixed states.
    fn seed_from_u64(mut state: u64) -> Self {
        fn splitmix64(mut z: u64) -> u64 {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = splitmix64(state);
            let bytes = state.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    //! Sequence-related sampling (`SliceRandom`).

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    //! Convenience re-exports mirroring `rand::prelude`.
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // Weyl sequence: full-period, obviously deterministic.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            self.0
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = Counter(0);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = Counter(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
