//! Vendored offline stand-in for `serde_json`.
//!
//! Provides the four generic entry points the workspace uses (`to_vec`,
//! `from_slice`, `to_string`, `from_str`). The wire format is **not** JSON —
//! it is the flat binary codec of the vendored `serde` stub; the string form
//! is that byte stream hex-encoded. Both round-trip exactly, which is the
//! only property call sites rely on.

use serde::de::DeserializeOwned;
use serde::Serialize;

/// Encoding/decoding error (re-exported codec error).
pub type Error = serde::CodecError;

/// Encodes `value` into bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    let mut out = Vec::new();
    value.serialize_into(&mut out);
    Ok(out)
}

/// Decodes a value from `bytes`. Trailing bytes are an error.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let mut input = bytes;
    let value = T::deserialize_from(&mut input)?;
    if !input.is_empty() {
        return Err(Error::new(format!(
            "{} trailing bytes after value",
            input.len()
        )));
    }
    Ok(value)
}

/// Encodes `value` as a hex string of its binary encoding.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let bytes = to_vec(value)?;
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    Ok(s)
}

/// Decodes a value from the hex string produced by [`to_string`].
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    if !s.len().is_multiple_of(2) {
        return Err(Error::new("odd-length hex string"));
    }
    let bytes: Result<Vec<u8>, Error> = (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|_| Error::new("invalid hex digit")))
        .collect();
    from_slice(&bytes?)
}

#[cfg(test)]
mod tests {
    #[test]
    fn string_round_trip() {
        let value = vec![(1u32, "hi".to_string()), (2, "there".to_string())];
        let s = super::to_string(&value).unwrap();
        let back: Vec<(u32, String)> = super::from_str(&s).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn slice_round_trip_rejects_trailing() {
        let bytes = super::to_vec(&7u64).unwrap();
        assert_eq!(super::from_slice::<u64>(&bytes).unwrap(), 7);
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(super::from_slice::<u64>(&longer).is_err());
    }
}
