//! Vendored offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` / `std::sync::RwLock` with `parking_lot`'s
//! non-poisoning API: `lock()` / `read()` / `write()` return guards directly.
//! Like real `parking_lot`, poisoning is ignored — if a writer panicked, the
//! next acquirer gets the data as the panicking thread left it. That is safe
//! here because the workspace's only cross-thread writers (the rayon stub's
//! scoped workers) propagate any worker panic to the caller via `join`, so a
//! run never continues past a panicked critical section.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` does not return a poison `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader–writer lock whose `read`/`write` do not return poison `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_across_threads() {
        use std::sync::Arc;
        let l = Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *l.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 800);
    }
}
