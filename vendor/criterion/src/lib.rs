//! Vendored offline stand-in for `criterion`.
//!
//! Implements the benchmark-definition API this workspace's `benches/` use
//! (`criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`)
//! with a deliberately small measurement loop: per benchmark it warms up,
//! runs `sample_size` samples within the configured measurement time, and
//! prints min/mean/max nanoseconds per iteration. No statistics beyond that —
//! the goal is honest relative timings with zero dependencies.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_measurement: Duration,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_measurement: Duration::from_secs(1),
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let group = BenchmarkGroup {
            name: name.into(),
            measurement: self.default_measurement,
            samples: self.default_samples,
            _criterion: self,
        };
        println!("\nbenchmark group: {}", group.name);
        group
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Display, mut f: F) {
        let samples = self.default_samples;
        let measurement = self.default_measurement;
        run_one(&name.to_string(), samples, measurement, &mut f);
    }
}

/// A named benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Identifier from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    measurement: Duration,
    samples: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement = time;
        self
    }

    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Sets the expected throughput (accepted for API compatibility; the
    /// report stays in ns/iter).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.samples, self.measurement, &mut f);
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.samples, self.measurement, &mut |bencher| {
            f(bencher, input)
        });
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Units for [`BenchmarkGroup::throughput`].
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Handed to each benchmark closure; [`Bencher::iter`] runs the timing loop.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    budget: Duration,
    target_samples: usize,
}

impl Bencher {
    /// Times `f`, storing per-iteration samples for the report.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit in ~1/50 of the budget?
        let calibration = Instant::now();
        black_box(f());
        let once = calibration.elapsed().max(Duration::from_nanos(1));
        let per_sample = (self.budget / 50).max(Duration::from_micros(10));
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        self.iters_per_sample = iters;

        let deadline = Instant::now() + self.budget;
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters as u32);
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

fn run_one(label: &str, samples: usize, measurement: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 0,
        budget: measurement,
        target_samples: samples,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {label}: no samples recorded");
        return;
    }
    let nanos: Vec<u128> = bencher.samples.iter().map(Duration::as_nanos).collect();
    let min = *nanos.iter().min().expect("non-empty");
    let max = *nanos.iter().max().expect("non-empty");
    let mean = nanos.iter().sum::<u128>() / nanos.len() as u128;
    println!(
        "  {label}: [{min} ns {mean} ns {max} ns]/iter ({} samples x {} iters)",
        nanos.len(),
        bencher.iters_per_sample
    );
}

/// Declares a benchmark group function that runs each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_composes() {
        let mut criterion = Criterion {
            default_measurement: Duration::from_millis(5),
            default_samples: 3,
        };
        let mut group = criterion.benchmark_group("smoke");
        group
            .measurement_time(Duration::from_millis(5))
            .sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |bencher, &x| {
            bencher.iter(|| black_box(x * 2));
        });
        group.bench_function("plain", |bencher| bencher.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("naive").to_string(), "naive");
    }
}
