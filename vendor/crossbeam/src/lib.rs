//! Vendored offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` with the
//! blocking semantics the simulated MPI communicator relies on, implemented
//! over `std::sync::mpsc`. Only the operations this workspace uses are
//! exposed (`send`, `recv`, `try_recv`, `recv_timeout`).

pub mod channel {
    //! Unbounded channels.

    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned when sending on a channel with no receiver; carries
    /// the unsent value like crossbeam's.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned when receiving from an empty, disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Error for [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// All senders have disconnected.
        Disconnected,
    }

    /// Error for [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders have disconnected.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            let h1 = std::thread::spawn(move || tx2.send(41u32).unwrap());
            let h2 = std::thread::spawn(move || tx.send(1u32).unwrap());
            let sum = rx.recv().unwrap() + rx.recv().unwrap();
            assert_eq!(sum, 42);
            h1.join().unwrap();
            h2.join().unwrap();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_after_receiver_drop_errors() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1u8).is_err());
        }
    }
}
