//! Vendored offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal replacement with the same *surface* the code uses —
//! `Serialize`, `Deserialize`, `de::DeserializeOwned` and the two derive
//! macros — but a much simpler data model: a flat, little-endian binary
//! codec (`serialize_into` / `deserialize_from`). `serde_json` (also
//! vendored) round-trips through this codec rather than producing real JSON.
//!
//! When real crates.io access is available the vendored crates can be
//! deleted and the manifests repointed at the originals without touching any
//! call sites that stick to derives and the generic `to_vec`/`from_slice`
//! entry points.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::Hash;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// Error produced when decoding malformed bytes.
#[derive(Debug, Clone)]
pub struct CodecError {
    message: String,
}

impl CodecError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        CodecError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CodecError {}

/// Types that can encode themselves into a byte buffer.
pub trait Serialize {
    /// Appends this value's encoding to `out`.
    fn serialize_into(&self, out: &mut Vec<u8>);
}

/// Types that can decode themselves from a byte slice.
///
/// `input` is advanced past the consumed bytes, so composite types decode
/// fields in sequence.
pub trait Deserialize: Sized {
    /// Decodes one value from the front of `input`.
    fn deserialize_from(input: &mut &[u8]) -> Result<Self, CodecError>;
}

pub mod de {
    //! Compatibility shim for `serde::de::DeserializeOwned`.

    /// Marker alias: with this codec every `Deserialize` type is owned.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], CodecError> {
    if input.len() < n {
        return Err(CodecError::new(format!(
            "unexpected end of input: wanted {n} bytes, have {}",
            input.len()
        )));
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

macro_rules! impl_codec_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize_into(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl Deserialize for $ty {
            fn deserialize_from(input: &mut &[u8]) -> Result<Self, CodecError> {
                let bytes = take(input, std::mem::size_of::<$ty>())?;
                Ok(<$ty>::from_le_bytes(bytes.try_into().expect("sized slice")))
            }
        }
    )*};
}

impl_codec_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, f32, f64);

impl Serialize for usize {
    fn serialize_into(&self, out: &mut Vec<u8>) {
        (*self as u64).serialize_into(out);
    }
}

impl Deserialize for usize {
    fn deserialize_from(input: &mut &[u8]) -> Result<Self, CodecError> {
        let v = u64::deserialize_from(input)?;
        usize::try_from(v).map_err(|_| CodecError::new("usize overflow"))
    }
}

impl Serialize for isize {
    fn serialize_into(&self, out: &mut Vec<u8>) {
        (*self as i64).serialize_into(out);
    }
}

impl Deserialize for isize {
    fn deserialize_from(input: &mut &[u8]) -> Result<Self, CodecError> {
        let v = i64::deserialize_from(input)?;
        isize::try_from(v).map_err(|_| CodecError::new("isize overflow"))
    }
}

impl Serialize for bool {
    fn serialize_into(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl Deserialize for bool {
    fn deserialize_from(input: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::deserialize_from(input)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::new(format!("invalid bool byte {other}"))),
        }
    }
}

impl Serialize for char {
    fn serialize_into(&self, out: &mut Vec<u8>) {
        (*self as u32).serialize_into(out);
    }
}

impl Deserialize for char {
    fn deserialize_from(input: &mut &[u8]) -> Result<Self, CodecError> {
        let v = u32::deserialize_from(input)?;
        char::from_u32(v).ok_or_else(|| CodecError::new(format!("invalid char scalar {v}")))
    }
}

impl Serialize for String {
    fn serialize_into(&self, out: &mut Vec<u8>) {
        self.as_str().serialize_into(out);
    }
}

impl Deserialize for String {
    fn deserialize_from(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = usize::deserialize_from(input)?;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::new("invalid utf-8 string"))
    }
}

impl Serialize for str {
    fn serialize_into(&self, out: &mut Vec<u8>) {
        self.len().serialize_into(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl Serialize for Duration {
    fn serialize_into(&self, out: &mut Vec<u8>) {
        self.as_secs().serialize_into(out);
        self.subsec_nanos().serialize_into(out);
    }
}

impl Deserialize for Duration {
    fn deserialize_from(input: &mut &[u8]) -> Result<Self, CodecError> {
        let secs = u64::deserialize_from(input)?;
        let nanos = u32::deserialize_from(input)?;
        Ok(Duration::new(secs, nanos))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_into(&self, out: &mut Vec<u8>) {
        (**self).serialize_into(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_into(&self, out: &mut Vec<u8>) {
        self.len().serialize_into(out);
        for item in self {
            item.serialize_into(out);
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_into(&self, out: &mut Vec<u8>) {
        self.as_slice().serialize_into(out);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_from(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = usize::deserialize_from(input)?;
        let mut out = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            out.push(T::deserialize_from(input)?);
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize_into(&self, out: &mut Vec<u8>) {
        self.len().serialize_into(out);
        for item in self {
            item.serialize_into(out);
        }
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize_from(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(Vec::<T>::deserialize_from(input)?.into())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_into(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.serialize_into(out);
            }
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_from(input: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::deserialize_from(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::deserialize_from(input)?)),
            other => Err(CodecError::new(format!("invalid option tag {other}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_into(&self, out: &mut Vec<u8>) {
        for item in self {
            item.serialize_into(out);
        }
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize_from(input: &mut &[u8]) -> Result<Self, CodecError> {
        let mut items = Vec::with_capacity(N);
        for _ in 0..N {
            items.push(T::deserialize_from(input)?);
        }
        items
            .try_into()
            .map_err(|_| CodecError::new("array length mismatch"))
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_into(&self, out: &mut Vec<u8>) {
        self.len().serialize_into(out);
        for (k, v) in self {
            k.serialize_into(out);
            v.serialize_into(out);
        }
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize_from(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = usize::deserialize_from(input)?;
        let mut map = HashMap::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            let k = K::deserialize_from(input)?;
            let v = V::deserialize_from(input)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_into(&self, out: &mut Vec<u8>) {
        self.len().serialize_into(out);
        for (k, v) in self {
            k.serialize_into(out);
            v.serialize_into(out);
        }
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_from(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = usize::deserialize_from(input)?;
        let mut map = BTreeMap::new();
        for _ in 0..len {
            let k = K::deserialize_from(input)?;
            let v = V::deserialize_from(input)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

impl<T: Serialize> Serialize for std::ops::Range<T> {
    fn serialize_into(&self, out: &mut Vec<u8>) {
        self.start.serialize_into(out);
        self.end.serialize_into(out);
    }
}

impl<T: Deserialize> Deserialize for std::ops::Range<T> {
    fn deserialize_from(input: &mut &[u8]) -> Result<Self, CodecError> {
        let start = T::deserialize_from(input)?;
        let end = T::deserialize_from(input)?;
        Ok(start..end)
    }
}

impl Serialize for () {
    fn serialize_into(&self, _out: &mut Vec<u8>) {}
}

impl Deserialize for () {
    fn deserialize_from(_input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(())
    }
}

macro_rules! impl_codec_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_into(&self, out: &mut Vec<u8>) {
                $(self.$idx.serialize_into(out);)+
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_from(input: &mut &[u8]) -> Result<Self, CodecError> {
                Ok(($($name::deserialize_from(input)?,)+))
            }
        }
    )+};
}

impl_codec_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(value: T) {
        let mut buf = Vec::new();
        value.serialize_into(&mut buf);
        let mut slice = buf.as_slice();
        let back = T::deserialize_from(&mut slice).unwrap();
        assert_eq!(back, value);
        assert!(
            slice.is_empty(),
            "decoder left {} trailing bytes",
            slice.len()
        );
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(42u64);
        round_trip(-7i32);
        round_trip(1.5f64);
        round_trip(true);
        round_trip("hello".to_string());
        round_trip(Some(3u8));
        round_trip(Option::<u8>::None);
        round_trip(vec![1u32, 2, 3]);
        round_trip((1u8, 2.0f64, "x".to_string()));
        round_trip(Duration::from_millis(1234));
        round_trip([1.0f64, 2.0, 3.0]);
    }

    #[test]
    fn maps_round_trip() {
        let mut h = HashMap::new();
        h.insert("a".to_string(), 1u64);
        h.insert("b".to_string(), 2u64);
        round_trip(h);
        let mut b = BTreeMap::new();
        b.insert(1u32, vec![1.0f64]);
        round_trip(b);
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        12345u64.serialize_into(&mut buf);
        let mut slice = &buf[..4];
        assert!(u64::deserialize_from(&mut slice).is_err());
    }
}
