//! Vendored offline stand-in for `rand_pcg`.
//!
//! Implements [`Pcg64Mcg`] (PCG's MCG 128/64 with XSL-RR output), the same
//! algorithm as the real crate: 128-bit multiplicative congruential state and
//! a 64-bit xorshift-low + random-rotate output. 16 bytes of state, fast,
//! and stable across platforms.

use rand::{RngCore, SeedableRng};

/// The PCG multiplier for the 128-bit MCG (from the PCG reference
/// implementation).
const MULTIPLIER: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;

/// PCG's MCG 128/64 generator with XSL-RR output function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mcg128Xsl64 {
    state: u128,
}

/// The conventional alias used by callers.
pub type Pcg64Mcg = Mcg128Xsl64;

impl Mcg128Xsl64 {
    /// Creates a generator from a 128-bit state. An MCG requires odd state,
    /// so the low bit is forced to 1.
    pub fn new(state: u128) -> Self {
        Mcg128Xsl64 { state: state | 1 }
    }
}

#[inline]
fn output_xsl_rr(state: u128) -> u64 {
    let rot = (state >> 122) as u32;
    let xsl = ((state >> 64) as u64) ^ (state as u64);
    xsl.rotate_right(rot)
}

impl RngCore for Mcg128Xsl64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(MULTIPLIER);
        output_xsl_rr(self.state)
    }
}

impl SeedableRng for Mcg128Xsl64 {
    type Seed = [u8; 16];

    fn from_seed(seed: Self::Seed) -> Self {
        Mcg128Xsl64::new(u128::from_le_bytes(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Pcg64Mcg::new(12345);
        let mut b = Pcg64Mcg::new(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = Pcg64Mcg::new(1);
        let mut b = Pcg64Mcg::new(3);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn seed_from_u64_mixes() {
        let mut a = Pcg64Mcg::seed_from_u64(0);
        let mut b = Pcg64Mcg::seed_from_u64(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn output_looks_uniform() {
        let mut rng = Pcg64Mcg::new(99);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02);
    }
}
