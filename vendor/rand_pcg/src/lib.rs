//! Vendored offline stand-in for `rand_pcg`.
//!
//! Implements [`Pcg64Mcg`] (PCG's MCG 128/64 with XSL-RR output), the same
//! algorithm as the real crate: 128-bit multiplicative congruential state and
//! a 64-bit xorshift-low + random-rotate output. 16 bytes of state, fast,
//! and stable across platforms.

use rand::{RngCore, SeedableRng};

/// The PCG multiplier for the 128-bit MCG (from the PCG reference
/// implementation).
const MULTIPLIER: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;

/// PCG's MCG 128/64 generator with XSL-RR output function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mcg128Xsl64 {
    state: u128,
}

/// The conventional alias used by callers.
pub type Pcg64Mcg = Mcg128Xsl64;

/// `MULTIPLIER.wrapping_pow(n)` in const context, for jump-ahead tables.
const fn multiplier_pow(n: usize) -> u128 {
    let mut acc = 1u128;
    let mut i = 0;
    while i < n {
        acc = acc.wrapping_mul(MULTIPLIER);
        i += 1;
    }
    acc
}

impl Mcg128Xsl64 {
    /// Wrapping powers `M^1..=M^4` of the PCG multiplier. Because the MCG
    /// update is a plain wrapping product, `state · M^j` lands exactly `j`
    /// steps ahead of `state` — see [`Mcg128Xsl64::step_jump`].
    pub const JUMP_MULTIPLIERS: [u128; 4] = [
        multiplier_pow(1),
        multiplier_pow(2),
        multiplier_pow(3),
        multiplier_pow(4),
    ];

    /// Creates a generator from a 128-bit state. An MCG requires odd state,
    /// so the low bit is forced to 1.
    pub fn new(state: u128) -> Self {
        Mcg128Xsl64 { state: state | 1 }
    }

    /// The raw 128-bit generator state. Batch kernels keep per-lane states in
    /// dense arrays and advance them with [`Mcg128Xsl64::step`];
    /// `Mcg128Xsl64::new(rng.raw_state())` reconstructs an identical
    /// generator (MCG state stays odd under the odd multiplier, so the
    /// low-bit forcing in `new` is a no-op on a live state).
    #[inline]
    pub fn raw_state(&self) -> u128 {
        self.state
    }

    /// One generator step on a detached raw state: returns the advanced state
    /// and the 64-bit output, exactly as [`RngCore::next_u64`] would produce
    /// them. This is the batch-kernel form of the generator — lanes advance
    /// independent states without constructing `Mcg128Xsl64` values.
    #[inline]
    pub fn step(state: u128) -> (u128, u64) {
        let next = state.wrapping_mul(MULTIPLIER);
        (next, output_xsl_rr(next))
    }

    /// One generator step through a precomputed jump multiplier: with
    /// [`Mcg128Xsl64::JUMP_MULTIPLIERS`]`[j - 1]` this returns the state and
    /// output exactly `j` plain [`Mcg128Xsl64::step`]s ahead of `state`, in a
    /// single 128-bit multiply. `(s·M^a)·M^b = s·M^(a+b)` holds bit-exactly
    /// under wrapping arithmetic, so batch kernels can compute all of a
    /// round's draws as independent multiplies off one base state instead of
    /// a serial multiply chain — same outputs, same stream positions.
    #[inline]
    pub fn step_jump(state: u128, jump: u128) -> (u128, u64) {
        let next = state.wrapping_mul(jump);
        (next, output_xsl_rr(next))
    }
}

#[inline]
fn output_xsl_rr(state: u128) -> u64 {
    let rot = (state >> 122) as u32;
    let xsl = ((state >> 64) as u64) ^ (state as u64);
    xsl.rotate_right(rot)
}

impl RngCore for Mcg128Xsl64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(MULTIPLIER);
        output_xsl_rr(self.state)
    }
}

impl SeedableRng for Mcg128Xsl64 {
    type Seed = [u8; 16];

    fn from_seed(seed: Self::Seed) -> Self {
        Mcg128Xsl64::new(u128::from_le_bytes(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Pcg64Mcg::new(12345);
        let mut b = Pcg64Mcg::new(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = Pcg64Mcg::new(1);
        let mut b = Pcg64Mcg::new(3);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn seed_from_u64_mixes() {
        let mut a = Pcg64Mcg::seed_from_u64(0);
        let mut b = Pcg64Mcg::seed_from_u64(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn detached_step_matches_next_u64() {
        let mut rng = Pcg64Mcg::new(0xDEAD_BEEF);
        let mut state = rng.raw_state();
        for _ in 0..64 {
            let (next, out) = Pcg64Mcg::step(state);
            state = next;
            assert_eq!(out, rng.next_u64());
            assert_eq!(state, rng.raw_state());
        }
        // Reconstruction from a raw state resumes the same sequence.
        let mut rebuilt = Pcg64Mcg::new(state);
        assert_eq!(rebuilt.next_u64(), rng.next_u64());
    }

    #[test]
    fn jump_multipliers_match_consecutive_steps() {
        let start = Pcg64Mcg::new(0x1234_5678_9ABC_DEF0).raw_state();
        for (i, &jump) in Pcg64Mcg::JUMP_MULTIPLIERS.iter().enumerate() {
            let mut state = start;
            let mut serial = (state, 0u64);
            for _ in 0..=i {
                serial = Pcg64Mcg::step(state);
                state = serial.0;
            }
            assert_eq!(Pcg64Mcg::step_jump(start, jump), serial);
        }
    }

    #[test]
    fn output_looks_uniform() {
        let mut rng = Pcg64Mcg::new(99);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02);
    }
}
