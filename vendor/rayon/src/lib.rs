//! Vendored offline stand-in for `rayon`.
//!
//! Implements the data-parallel subset this workspace uses — `ThreadPool`,
//! `ThreadPoolBuilder`, `into_par_iter()` on ranges and vectors, `par_iter()`
//! on slices, and the `map` / `for_each` / `sum` / `collect` terminals — on
//! top of the `egd-sched` adaptive work-stealing scheduler.
//!
//! Execution model: a parallel iterator materialises its items and hands
//! them to `egd_sched::map_collect`, which splits them into per-worker
//! segments, lets idle workers steal the back halves of busy workers'
//! remaining ranges (adaptive block growth, rayon-adaptive style), and
//! assembles the per-block partial results **in logical input order**.
//! Results are therefore bit-identical to a sequential evaluation regardless
//! of the worker count *and of the steal schedule* — a stronger guarantee
//! than real rayon's (whose reductions are tree-shaped but also
//! deterministic for `collect`), and exactly what the engine's cross-engine
//! consistency tests rely on. `egd_sched::with_policy(Policy::Static, ..)`
//! restores the legacy one-chunk-per-worker split for load-balance A/B
//! measurements, and `egd_sched::take_last_run_stats()` exposes the steal
//! counts and per-worker busy/CPU times of the most recent run.
//!
//! `ThreadPool::install` scopes the worker count: parallel iterators run
//! inside `install` use the pool's configured thread count, and default to
//! the machine's available parallelism elsewhere.

use std::cell::Cell;
use std::fmt;

thread_local! {
    /// Worker count of the innermost `ThreadPool::install` on this thread.
    static CURRENT_POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The worker count parallel iterators will use on this thread.
pub fn current_num_threads() -> usize {
    let configured = CURRENT_POOL_THREADS.with(|c| c.get());
    if configured == 0 {
        default_threads()
    } else {
        configured
    }
}

/// Error returned when a pool cannot be built. With this implementation pool
/// construction is infallible; the type exists for API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings (worker count = available
    /// parallelism).
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count; `0` means "use all available parallelism".
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Accepted for API compatibility; worker threads are scoped
    /// `std::thread` spawns and are not individually named.
    pub fn thread_name<F: FnMut(usize) -> String>(self, _name: F) -> Self {
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A logical thread pool: it carries a worker count that scopes the
/// parallelism of iterators run under [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The worker count parallel work in this pool will use.
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        }
    }

    /// Runs `op` with this pool's worker count active for parallel
    /// iterators, restoring the previous count afterwards (also on panic).
    pub fn install<R, F: FnOnce() -> R>(&self, op: F) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_POOL_THREADS.with(|c| c.set(self.0));
            }
        }
        let previous = CURRENT_POOL_THREADS.with(|c| c.get());
        let _restore = Restore(previous);
        CURRENT_POOL_THREADS.with(|c| c.set(self.current_num_threads()));
        op()
    }
}

/// Evaluates `f` over `items` on up to `current_num_threads()` workers of
/// the `egd-sched` work-stealing scheduler, returning results in input
/// order.
fn parallel_eval<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len().max(1));
    egd_sched::map_collect(threads, items, f)
}

/// A parallel iterator: evaluation happens in `eval_with`, which applies a
/// final per-item function in parallel and returns results in input order.
pub trait ParallelIterator: Sized + Send {
    /// The item type produced by this iterator.
    type Item: Send;

    /// Applies `g` to every item in parallel; results are in input order.
    fn eval_with<R, G>(self, g: G) -> Vec<R>
    where
        R: Send,
        G: Fn(Self::Item) -> R + Sync + Send;

    /// Maps every item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Filters items by `f`. The filter runs in parallel; order is kept.
    fn filter<F>(self, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter { base: self, f }
    }

    /// Runs `f` on every item (on the worker threads).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        self.eval_with(f);
    }

    /// Sums the items (sequentially over the parallel results, preserving
    /// input order so floating-point sums are deterministic).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.eval_with(|item| item).into_iter().sum()
    }

    /// Counts the items.
    fn count(self) -> usize {
        self.eval_with(|_| ()).len()
    }

    /// Collects into any `FromIterator` collection, in input order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.eval_with(|item| item).into_iter().collect()
    }

    /// Reduces items with `op` starting from `identity()`, folding the
    /// parallel results in input order.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        self.eval_with(|item| item).into_iter().fold(identity(), op)
    }
}

/// Base parallel iterator over materialised items.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;

    fn eval_with<R, G>(self, g: G) -> Vec<R>
    where
        R: Send,
        G: Fn(T) -> R + Sync + Send,
    {
        parallel_eval(self.items, g)
    }
}

/// Mapped parallel iterator.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync + Send,
{
    type Item = R;

    fn eval_with<R2, G>(self, g: G) -> Vec<R2>
    where
        R2: Send,
        G: Fn(R) -> R2 + Sync + Send,
    {
        let f = self.f;
        self.base.eval_with(move |item| g(f(item)))
    }
}

/// Filtered parallel iterator.
pub struct Filter<P, F> {
    base: P,
    f: F,
}

impl<P, F> ParallelIterator for Filter<P, F>
where
    P: ParallelIterator,
    F: Fn(&P::Item) -> bool + Sync + Send,
{
    type Item = P::Item;

    fn eval_with<R2, G>(self, g: G) -> Vec<R2>
    where
        R2: Send,
        G: Fn(P::Item) -> R2 + Sync + Send,
    {
        let f = self.f;
        self.base
            .eval_with(move |item| if f(&item) { Some(g(item)) } else { None })
            .into_iter()
            .flatten()
            .collect()
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IntoParIter<T>;

    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($ty:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$ty> {
            type Item = $ty;
            type Iter = IntoParIter<$ty>;

            fn into_par_iter(self) -> IntoParIter<$ty> {
                IntoParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_par_iter!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Conversion into a borrowing parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'data> {
    /// Item type of the resulting iterator (a reference).
    type Item: Send;
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Returns a parallel iterator over references.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = IntoParIter<&'data T>;

    fn par_iter(&'data self) -> IntoParIter<&'data T> {
        IntoParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = IntoParIter<&'data T>;

    fn par_iter(&'data self) -> IntoParIter<&'data T> {
        IntoParIter {
            items: self.iter().collect(),
        }
    }
}

pub mod prelude {
    //! Convenience re-exports mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let doubled: Vec<u64> = (0..1000u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sum_matches_sequential() {
        let s: u64 = (0..1000u64).into_par_iter().sum();
        assert_eq!(s, 499_500);
    }

    #[test]
    fn collect_into_result_short_circuits_on_err() {
        let ok: Result<Vec<u64>, String> = (0..100u64).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<u64>, String> = (0..100u64)
            .into_par_iter()
            .map(|x| {
                if x == 50 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn for_each_runs_every_item() {
        let acc = AtomicU64::new(0);
        (0..10_000u64).into_par_iter().for_each(|_| {
            acc.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(acc.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn par_iter_borrows() {
        let data: Vec<u64> = (0..256).collect();
        let s: u64 = data.par_iter().map(|&x| x).sum();
        assert_eq!(s, 255 * 256 / 2);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        let auto = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(auto.current_num_threads() >= 1);
    }

    #[test]
    fn install_restores_on_exit() {
        let outer = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        outer.install(|| {
            assert_eq!(current_num_threads(), 2);
            inner.install(|| assert_eq!(current_num_threads(), 5));
            assert_eq!(current_num_threads(), 2);
        });
    }

    #[test]
    fn filter_keeps_order() {
        let evens: Vec<u64> = (0..100u64).into_par_iter().filter(|x| x % 2 == 0).collect();
        assert_eq!(
            evens,
            (0..100u64).filter(|x| x % 2 == 0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn single_thread_pool_is_sequential() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let v: Vec<usize> = pool.install(|| (0..64usize).into_par_iter().collect());
        assert_eq!(v, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn runs_record_scheduler_stats() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let _: Vec<u64> = pool.install(|| (0..512u64).into_par_iter().map(|x| x + 1).collect());
        let stats = egd_sched::take_last_run_stats().expect("par_iter records stats");
        assert_eq!(stats.items, 512);
        let processed: u64 = stats.workers.iter().map(|w| w.items).sum();
        assert_eq!(processed, 512);
    }

    #[test]
    fn forced_steal_schedules_keep_results_identical() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let reference: Vec<u64> = (0..300u64).map(|x| x.wrapping_mul(x)).collect();
        let stressed: Vec<u64> = {
            let _guard = egd_sched::force_steals();
            pool.install(|| {
                (0..300u64)
                    .into_par_iter()
                    .map(|x| x.wrapping_mul(x))
                    .collect()
            })
        };
        assert_eq!(stressed, reference);
        let stats = egd_sched::take_last_run_stats().unwrap();
        assert!(stats.steals > 0, "stress mode must force steals: {stats:?}");
    }

    #[test]
    fn static_policy_reproduces_legacy_backend() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let adaptive: Vec<u64> =
            pool.install(|| (0..777u64).into_par_iter().map(|x| x ^ 42).collect());
        let fixed: Vec<u64> = egd_sched::with_policy(egd_sched::Policy::Static, || {
            pool.install(|| (0..777u64).into_par_iter().map(|x| x ^ 42).collect())
        });
        assert_eq!(adaptive, fixed);
        let stats = egd_sched::take_last_run_stats().unwrap();
        assert_eq!(stats.policy, egd_sched::Policy::Static);
        assert_eq!(stats.steals, 0);
    }
}
