//! Vendored offline stand-in for `serde_derive`.
//!
//! The real crates.io registry is unreachable in this build environment, so
//! the workspace vendors a minimal `serde` whose data model is a flat binary
//! codec (see `vendor/serde`). This proc-macro crate provides the matching
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` implementations.
//!
//! The parser is deliberately small: it supports non-generic structs (named,
//! tuple and unit) and enums (unit, tuple and struct variants), which covers
//! every derive site in this workspace. Deriving on a generic item is a
//! compile error with a clear message rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field: `(name_or_index, type_tokens)`.
struct Field {
    name: String,
    ty: String,
}

enum VariantShape {
    Unit,
    Tuple(Vec<String>),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        types: Vec<String>,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(tt: &TokenTree, s: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == s)
}

/// Skips outer attributes (`#[...]`, including expanded doc comments) and a
/// visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        if *i < tokens.len() && is_punct(&tokens[*i], '#') {
            *i += 1; // '#'
            if *i < tokens.len()
                && matches!(&tokens[*i], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
            {
                *i += 1;
            }
            continue;
        }
        if *i < tokens.len() && is_ident(&tokens[*i], "pub") {
            *i += 1;
            if *i < tokens.len()
                && matches!(&tokens[*i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
            {
                *i += 1;
            }
            continue;
        }
        break;
    }
}

fn ident_at(tokens: &[TokenTree], i: usize, what: &str) -> String {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected {what}, found {other:?}"),
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = ident_at(&tokens, i, "`struct` or `enum`");
    i += 1;
    let name = ident_at(&tokens, i, "item name");
    i += 1;
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        panic!("serde_derive (vendored stub): generic items are not supported; derive on `{name}` by hand");
    }
    match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Item::TupleStruct {
                name,
                types: parse_tuple_types(g.stream()),
            }
        }
        ("struct", Some(tt)) if is_punct(tt, ';') => Item::UnitStruct { name },
        ("struct", None) => Item::UnitStruct { name },
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Item::Enum {
            name,
            variants: parse_variants(g.stream()),
        },
        _ => panic!("serde_derive: unsupported item shape for `{name}`"),
    }
}

/// Consumes type tokens starting at `i` until a `,` at angle-bracket depth 0,
/// returning the type's source text. Leaves `i` past the comma (or at end).
fn take_type(tokens: &[TokenTree], i: &mut usize) -> String {
    let mut depth: i32 = 0;
    let mut ty = TokenStream::new();
    while *i < tokens.len() {
        let tt = &tokens[*i];
        if depth == 0 && is_punct(tt, ',') {
            *i += 1;
            break;
        }
        if is_punct(tt, '<') {
            depth += 1;
        }
        if is_punct(tt, '>') {
            depth -= 1;
        }
        ty.extend([tt.clone()]);
        *i += 1;
    }
    ty.to_string()
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i, "field name");
        i += 1;
        assert!(
            i < tokens.len() && is_punct(&tokens[i], ':'),
            "serde_derive: expected `:` after field `{name}`"
        );
        i += 1;
        let ty = take_type(&tokens, &mut i);
        fields.push(Field { name, ty });
    }
    fields
}

fn parse_tuple_types(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut types = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        types.push(take_type(&tokens, &mut i));
    }
    types
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i, "variant name");
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(parse_tuple_types(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while i < tokens.len() && !is_punct(&tokens[i], ',') {
            i += 1;
        }
        if i < tokens.len() {
            i += 1; // ','
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let mut body = String::new();
            for f in fields {
                body.push_str(&format!(
                    "::serde::Serialize::serialize_into(&self.{}, out);\n",
                    f.name
                ));
            }
            (name, body)
        }
        Item::TupleStruct { name, types } => {
            let mut body = String::new();
            for idx in 0..types.len() {
                body.push_str(&format!(
                    "::serde::Serialize::serialize_into(&self.{idx}, out);\n"
                ));
            }
            (name, body)
        }
        Item::UnitStruct { name } => (name, String::new()),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (tag, v) in variants.iter().enumerate() {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => {{ ::serde::Serialize::serialize_into(&{tag}u32, out); }}\n"
                    )),
                    VariantShape::Tuple(types) => {
                        let binds: Vec<String> = (0..types.len()).map(|k| format!("f{k}")).collect();
                        let mut sers = format!("::serde::Serialize::serialize_into(&{tag}u32, out);");
                        for b in &binds {
                            sers.push_str(&format!("::serde::Serialize::serialize_into({b}, out);"));
                        }
                        arms.push_str(&format!("{name}::{vn}({}) => {{ {sers} }}\n", binds.join(", ")));
                    }
                    VariantShape::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut sers = format!("::serde::Serialize::serialize_into(&{tag}u32, out);");
                        for b in &binds {
                            sers.push_str(&format!("::serde::Serialize::serialize_into({b}, out);"));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ {sers} }}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            (name, format!("match self {{\n{arms}\n}}\n"))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize_into(&self, out: &mut ::std::vec::Vec<u8>) {{\n\
                 let _ = &out;\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{}: <{} as ::serde::Deserialize>::deserialize_from(input)?",
                        f.name, f.ty
                    )
                })
                .collect();
            (
                name,
                format!(
                    "::std::result::Result::Ok({name} {{ {} }})",
                    inits.join(", ")
                ),
            )
        }
        Item::TupleStruct { name, types } => {
            let inits: Vec<String> = types
                .iter()
                .map(|ty| format!("<{ty} as ::serde::Deserialize>::deserialize_from(input)?"))
                .collect();
            (
                name,
                format!("::std::result::Result::Ok({name}({}))", inits.join(", ")),
            )
        }
        Item::UnitStruct { name } => (name, format!("::std::result::Result::Ok({name})")),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (tag, v) in variants.iter().enumerate() {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        arms.push_str(&format!(
                            "{tag}u32 => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantShape::Tuple(types) => {
                        let inits: Vec<String> = types
                            .iter()
                            .map(|ty| {
                                format!("<{ty} as ::serde::Deserialize>::deserialize_from(input)?")
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{tag}u32 => ::std::result::Result::Ok({name}::{vn}({})),\n",
                            inits.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{}: <{} as ::serde::Deserialize>::deserialize_from(input)?",
                                    f.name, f.ty
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{tag}u32 => ::std::result::Result::Ok({name}::{vn} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            (
                name,
                format!(
                    "let tag = <u32 as ::serde::Deserialize>::deserialize_from(input)?;\n\
                     match tag {{\n{arms}\
                     _ => ::std::result::Result::Err(::serde::CodecError::new(\
                         format!(\"invalid enum tag {{tag}} for {name}\"))),\n\
                     }}"
                ),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_from(input: &mut &[u8]) -> ::std::result::Result<Self, ::serde::CodecError> {{\n\
                 let _ = &input;\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}
