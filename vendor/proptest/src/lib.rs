//! Vendored offline stand-in for `proptest`.
//!
//! Supports the subset of proptest this workspace's property tests use: the
//! `proptest!` macro with a `#![proptest_config(..)]` header, `any::<T>()`,
//! range strategies, `prop_map` / `prop_flat_map`, tuple strategies,
//! `collection::vec`, and the `prop_assert*` macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed (no persisted failure files), and failing cases are
//! reported by panic without shrinking. Deterministic generation keeps CI
//! runs reproducible; the loss of shrinking is the price of an offline stub.

use rand::{RngCore, SeedableRng};

pub mod test_runner {
    //! Deterministic RNG used to generate test cases.

    use super::*;

    /// The case-generation RNG (a PCG stream per case index).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: rand_pcg::Pcg64Mcg,
    }

    impl TestRng {
        /// RNG for one `(test, case)` pair. Deterministic: the same case
        /// index always regenerates the same inputs.
        pub fn deterministic(case: u64) -> Self {
            TestRng {
                inner: rand_pcg::Pcg64Mcg::seed_from_u64(
                    0xEC0_7E57 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;
    use rand::Rng;

    /// A generator of random values for property tests.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Builds a second strategy from each generated value and samples it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A: 0),
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    );

    /// Values with a canonical "any value" strategy (`any::<T>()`).
    pub trait ArbitraryValue: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_via_gen {
        ($($ty:ty),*) => {$(
            impl ArbitraryValue for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }

    impl_arbitrary_via_gen!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// Strategy returned by [`crate::any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Strategy generating any value of `T` (`any::<bool>()`, `any::<u32>()`, ...).
pub fn any<T: strategy::ArbitraryValue>() -> strategy::Any<T> {
    strategy::Any::default()
}

pub mod collection {
    //! Collection strategies (`collection::vec`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Sizes a [`vec`] strategy accepts: a fixed length or a range.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for vectors of `element` values.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// comes from `len`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.draw_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Convenience re-exports mirroring `proptest::prelude`.
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts two expressions are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts two expressions are unequal for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines `#[test]` functions that run a body over randomly generated
/// inputs, mirroring proptest's macro syntax.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategy = ($($strat,)+);
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::deterministic(case as u64);
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::generate(&strategy, &mut rng);
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn maps_and_tuples_compose((a, b) in (1u64..5).prop_flat_map(|n| (n..n + 3, 0u64..n))) {
            prop_assert!(b < a);
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(any::<bool>(), 7usize)) {
            prop_assert_eq!(v.len(), 7);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic(4);
        let mut b = crate::test_runner::TestRng::deterministic(4);
        let strat = 0u64..1000;
        let xs: Vec<u64> = (0..10)
            .map(|_| Strategy::generate(&strat, &mut a))
            .collect();
        let ys: Vec<u64> = (0..10)
            .map(|_| Strategy::generate(&strat, &mut b))
            .collect();
        assert_eq!(xs, ys);
    }
}
